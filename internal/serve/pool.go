package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// JobState is the lifecycle of a job inside the service.
type JobState int32

const (
	StateQueued JobState = iota
	StateRunning
	StateDone
	StateFailed
)

func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return "unknown"
}

// Job is one admitted simulation request and its live status. Status
// handlers read state/progress concurrently with the worker, hence the
// atomics; Result/Err are written exactly once, before done closes.
type Job struct {
	ID     string
	Key    uint64
	Tenant string // normalized tenant name ("" = the default tenant)
	Spec   JobSpec

	Progress Progress
	state    atomic.Int32

	// Terminal outcome: valid after done is closed.
	Result JobResult
	Err    string
	Class  string
	terr   error // the structured terminal error behind Err
	done   chan struct{}

	enqueuedAt   time.Time
	queueWait    time.Duration // set at dequeue, read after done closes
	wallDeadline time.Time     // zero = no wall budget
	aborted      atomic.Bool   // drain/cancel request, polled by the run
	recovered    bool          // journal-replayed job: bypasses admission

	// resume is the job's journal-vouched checkpoint ladder, newest
	// first — populated at replay from checkpointed records, consumed by
	// the worker's ckptRun to cut the re-executed work to at most one
	// checkpoint interval (plus whatever the ladder had to skip).
	resume []ckptRef
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState { return JobState(j.state.Load()) }

// Done exposes the completion channel (closed at terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

// QueueWait is how long the job sat queued before a worker picked it up
// — the per-tenant isolation metric the noisy-neighbor soak bounds.
// Valid once the job has started (and certainly after Done closes).
func (j *Job) QueueWait() time.Duration { return j.queueWait }

// TerminalError returns the structured failure (nil if the job
// succeeded or is not yet terminal). Callers discriminate with
// errors.Is against ErrJobDeadline and the simulation sentinels.
func (j *Job) TerminalError() error {
	select {
	case <-j.done:
		return j.terr
	default:
		return nil
	}
}

// TenantConfig is one tenant's scheduling weight and quotas. The zero
// value is the open default: weight 1, no per-tenant queue bound beyond
// the pool's global one, no concurrency cap, no cycle metering.
type TenantConfig struct {
	// Weight is the DRR quantum: per scheduling round a tenant with
	// weight w dequeues up to w jobs while backlogged. Default 1.
	Weight int
	// MaxConcurrent caps the tenant's running jobs (0 = no cap).
	// Enforced by the scheduler: a capped tenant's jobs wait in its own
	// queue while other tenants' jobs run.
	MaxConcurrent int
	// MaxQueue caps the tenant's queued jobs (0 = no per-tenant cap;
	// the pool's global QueueDepth still applies). Submits past it are
	// refused with *QuotaError kind "queue".
	MaxQueue int
	// CycleBudget is a refilling token bucket of simulated cycles
	// (0 = unmetered). Completed jobs are charged their actual cycles;
	// the balance may go negative mid-job, and while it is not positive
	// new submits are refused with *QuotaError kind "cycles". Admission
	// also reserves the tenant's recent per-job cycle estimate for every
	// job it already has queued or running, so a burst buffered in the
	// queue cannot spend the same balance twice before the charges land.
	CycleBudget int64
	// CycleRefill is the refill rate in simulated cycles per wall
	// second (default: CycleBudget per second when metering is on).
	CycleRefill int64
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.MaxConcurrent < 0 {
		c.MaxConcurrent = 0
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.CycleBudget > 0 && c.CycleRefill <= 0 {
		c.CycleRefill = c.CycleBudget
	}
	return c
}

// PoolConfig tunes the worker pool and its admission control.
type PoolConfig struct {
	Workers    int           // concurrent simulations (default 2)
	QueueDepth int           // hard bound on total waiting jobs (default 64)
	TargetWait time.Duration // queueing-delay target driving AIMD (default 2s)
	RetryMin   time.Duration // floor for the shed Retry-After hint (default 1s)

	// Tenants holds per-tenant weight/quota overrides by name; tenants
	// not present get DefaultTenant's config.
	Tenants map[string]TenantConfig
	// DefaultTenant is the config for tenants absent from Tenants. The
	// zero value (weight 1, no quotas) preserves the pre-tenant
	// behavior: a single shared FIFO bounded only by the global limits.
	DefaultTenant TenantConfig

	// now is the injectable clock (tests drive admission decisions
	// deterministically); nil means time.Now.
	now func() time.Time
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TargetWait <= 0 {
		c.TargetWait = 2 * time.Second
	}
	if c.RetryMin <= 0 {
		c.RetryMin = time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// tenantState is one tenant's live scheduling state: its queue, its DRR
// deficit, its quota counters. Guarded by Pool.mu.
type tenantState struct {
	name    string
	cfg     TenantConfig
	queue   []*Job
	running int
	deficit int // DRR credit, in jobs; replenished by Weight per round

	// Simulated-cycle token bucket (active when cfg.CycleBudget > 0).
	balance    int64
	lastRefill time.Time
	// estCycles is an EWMA of the cycles charged per job — the admission
	// reservation for work in flight but not yet charged. Zero until the
	// first charge: a tenant with no history is not reserved against.
	estCycles float64

	sheds      int64 // refusals charged to this tenant (quota + overload)
	admitted   int64
	dequeues   int64
	completed  int64
	cyclesUsed int64
}

func (t *tenantState) weight() int { return t.cfg.Weight }

// dispatchable reports whether the scheduler may start a job for t.
func (t *tenantState) dispatchable() bool {
	if len(t.queue) == 0 {
		return false
	}
	return t.cfg.MaxConcurrent <= 0 || t.running < t.cfg.MaxConcurrent
}

// TenantSnapshot is one tenant's observable scheduling state, exposed
// on /statusz so operators can tell who is loading the service and
// whose quotas are biting.
type TenantSnapshot struct {
	Tenant       string `json:"tenant"`
	Weight       int    `json:"weight"`
	Queued       int    `json:"queued"`
	Running      int    `json:"running"`
	Admitted     int64  `json:"admitted"`
	Dequeues     int64  `json:"dequeues"`
	Completed    int64  `json:"completed"`
	Sheds        int64  `json:"sheds"`
	CyclesUsed   int64  `json:"cycles_used"`
	CycleBudget  int64  `json:"cycle_budget,omitempty"`
	CycleBalance int64  `json:"cycle_balance,omitempty"`
}

// Pool is the bounded worker pool with per-tenant isolation on top of
// AIMD admission control. Each tenant has its own FIFO queue; workers
// pull from the queues by deficit round-robin (DRR), so over any
// saturated interval tenant dequeue counts converge to the configured
// weight ratio and one tenant's backlog cannot starve another's. The
// global AIMD window still bounds total jobs in the system (queued +
// running), growing additively while dequeued jobs started within the
// TargetWait budget and halving when queueing delay blows past it —
// but refusals now carry a Retry-After derived from the refused
// tenant's own queue and fair share, and per-tenant quotas (queue
// depth, concurrency, simulated-cycle budget) are checked before the
// global window so a tenant at quota is refused with *QuotaError even
// on an idle service.
type Pool struct {
	cfg PoolConfig
	run func(*Job)

	mu        sync.Mutex
	cond      *sync.Cond
	tenants   map[string]*tenantState
	ring      []*tenantState // DRR order: first-seen order, deterministic
	rrIdx     int            // ring position of the tenant served last
	queued    int            // total queued across tenants
	running   int            // total running
	window    float64
	ewmaMS    float64 // EWMA of per-job service wall time
	draining  bool
	closed    bool
	wg        sync.WaitGroup
	sheds     int64
	completed int64
}

// NewPool starts cfg.Workers workers that execute run for each admitted
// job. run must mark the job terminal (the server's worker does).
func NewPool(cfg PoolConfig, run func(*Job)) *Pool {
	p := &Pool{cfg: cfg.withDefaults(), run: run, tenants: make(map[string]*tenantState)}
	p.cond = sync.NewCond(&p.mu)
	p.window = float64(p.cfg.Workers)
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// tenantLocked returns (creating on first sight) the state for name.
// Creation order fixes the DRR ring order, which keeps scheduling
// deterministic for a deterministic arrival order.
func (p *Pool) tenantLocked(name string) *tenantState {
	if name == "" {
		name = DefaultTenant
	}
	if t, ok := p.tenants[name]; ok {
		return t
	}
	cfg, ok := p.cfg.Tenants[name]
	if !ok {
		cfg = p.cfg.DefaultTenant
	}
	t := &tenantState{name: name, cfg: cfg.withDefaults()}
	p.tenants[name] = t
	p.ring = append(p.ring, t)
	return t
}

// refillLocked tops up t's cycle bucket for the wall time elapsed since
// the last refill, capped at the budget. Fractional refills are never
// lost: lastRefill only advances when whole cycles land.
func (p *Pool) refillLocked(t *tenantState) {
	if t.cfg.CycleBudget <= 0 {
		return
	}
	now := p.cfg.now()
	if t.lastRefill.IsZero() {
		t.lastRefill = now
		t.balance = t.cfg.CycleBudget
		return
	}
	elapsed := now.Sub(t.lastRefill)
	if elapsed <= 0 {
		return
	}
	add := int64(float64(t.cfg.CycleRefill) * elapsed.Seconds())
	if add <= 0 {
		return
	}
	t.balance += add
	if t.balance > t.cfg.CycleBudget {
		t.balance = t.cfg.CycleBudget
	}
	t.lastRefill = now
}

// Submit admits or sheds a job for its tenant. Per-tenant quota
// refusals return *QuotaError, global overload returns *ShedError
// (both 429), a draining pool returns ErrDraining (503). Admitted jobs
// join their tenant's FIFO queue and are scheduled by DRR.
func (p *Pool) Submit(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining || p.closed {
		return ErrDraining
	}
	t := p.tenantLocked(j.Tenant)
	if !j.recovered {
		// Per-tenant quotas first: a tenant at quota is refused with its
		// own Retry-After even when the service has room for others.
		p.refillLocked(t)
		if t.cfg.CycleBudget > 0 {
			// Reserve the estimated cost of work already in flight:
			// charges land at completion, so without the reservation a
			// tenant could stack MaxQueue+MaxConcurrent jobs against the
			// same balance every refill window.
			reserve := int64(t.estCycles * float64(len(t.queue)+t.running))
			if t.balance <= reserve {
				t.sheds++
				p.sheds++
				return &QuotaError{Tenant: t.name, Kind: "cycles", Limit: t.cfg.CycleBudget,
					RetryAfter: p.cycleRetryLocked(t, reserve)}
			}
		}
		if t.cfg.MaxQueue > 0 && len(t.queue) >= t.cfg.MaxQueue {
			t.sheds++
			p.sheds++
			return &QuotaError{Tenant: t.name, Kind: "queue", Limit: int64(t.cfg.MaxQueue),
				RetryAfter: p.retryAfterLocked(t)}
		}
		// Global overload: the AIMD window and the hard queue bound.
		// Admission is weighted-fair: a tenant below its share of the
		// window is admitted even when other tenants hold the window
		// full — otherwise a 1 ms-loop flooder wins every slot the
		// window opens and a polite tenant starves at the front door.
		// Only the hard QueueDepth bound overrides the share guarantee.
		inSystem := p.queued + p.running
		limit := int(p.window)
		if max := p.cfg.Workers + p.cfg.QueueDepth; limit > max {
			limit = max
		}
		tenantIn := len(t.queue) + t.running
		if (inSystem >= limit && tenantIn >= p.fairShareLocked(t, limit)) ||
			p.queued >= p.cfg.QueueDepth {
			t.sheds++
			p.sheds++
			return &ShedError{Tenant: t.name, Depth: inSystem, Window: limit,
				RetryAfter: p.retryAfterLocked(t)}
		}
	}
	j.enqueuedAt = p.cfg.now()
	t.queue = append(t.queue, j)
	t.admitted++
	p.queued++
	p.cond.Signal()
	return nil
}

// fairShareLocked is t's guaranteed slice of the admission window:
// limit split by the weights of the tenants currently competing (t
// always counts itself), never below one job. With a single tenant the
// share equals the whole window, so pre-tenant admission behavior is
// unchanged.
func (p *Pool) fairShareLocked(t *tenantState, limit int) int {
	wsum := t.weight()
	for _, u := range p.ring {
		if u != t && (len(u.queue) > 0 || u.running > 0) {
			wsum += u.weight()
		}
	}
	share := limit * t.weight() / wsum
	if share < 1 {
		share = 1
	}
	return share
}

// retryAfterLocked estimates when a refused tenant should come back:
// its own backlog drained at its fair share of the observed service
// rate, floored at RetryMin. A tenant with an empty queue gets the
// floor even while another tenant's flood has the global window shut —
// the per-tenant Retry-After contract.
func (p *Pool) retryAfterLocked(t *tenantState) time.Duration {
	perJob := time.Duration(p.ewmaMS) * time.Millisecond
	if perJob <= 0 {
		perJob = p.cfg.RetryMin
	}
	// Fair share: t's weight over the weights of every tenant currently
	// competing for workers (t always counts itself — it is submitting).
	wsum := t.weight()
	for _, u := range p.ring {
		if u != t && (len(u.queue) > 0 || u.running > 0) {
			wsum += u.weight()
		}
	}
	eff := float64(p.cfg.Workers) * float64(t.weight()) / float64(wsum)
	if eff <= 0 {
		eff = 1
	}
	est := time.Duration(float64(len(t.queue)+1) * float64(perJob) / eff)
	if est < p.cfg.RetryMin {
		est = p.cfg.RetryMin
	}
	return est
}

// cycleRetryLocked estimates when t's cycle balance clears the given
// in-flight reservation at its refill rate, floored at RetryMin.
func (p *Pool) cycleRetryLocked(t *tenantState, reserve int64) time.Duration {
	need := reserve + 1 - t.balance // cycles until balance > reserve
	if need <= 0 || t.cfg.CycleRefill <= 0 {
		return p.cfg.RetryMin
	}
	est := time.Duration(float64(need) / float64(t.cfg.CycleRefill) * float64(time.Second))
	if est < p.cfg.RetryMin {
		est = p.cfg.RetryMin
	}
	return est
}

// nextLocked is the DRR scheduler: pick the next job to run, or nil if
// nothing is dispatchable (empty queues, or every backlogged tenant is
// at its concurrency cap). Sweep the ring spending existing deficits;
// if nothing dispatches, start a new round — every backlogged,
// uncapped tenant banks Weight more credit, idle tenants forfeit
// theirs — and sweep once more. The served tenant keeps the ring
// position, so it continues spending its quantum before the pointer
// moves on: classic DRR bursting, bounded by the weight.
func (p *Pool) nextLocked() (*Job, *tenantState) {
	n := len(p.ring)
	if n == 0 || p.queued == 0 {
		return nil, nil
	}
	for sweep := 0; sweep < 2; sweep++ {
		for i := 0; i < n; i++ {
			idx := (p.rrIdx + i) % n
			t := p.ring[idx]
			if !t.dispatchable() || t.deficit < 1 {
				continue
			}
			t.deficit--
			p.rrIdx = idx
			j := t.queue[0]
			t.queue = t.queue[1:]
			p.queued--
			t.running++
			p.running++
			t.dequeues++
			return j, t
		}
		if sweep == 0 {
			for _, t := range p.ring {
				switch {
				case t.dispatchable():
					t.deficit += t.weight()
				case len(t.queue) == 0:
					// An idle tenant banks no credit: DRR fairness is
					// over backlogged intervals, not a grudge ledger.
					t.deficit = 0
				}
			}
		}
	}
	return nil, nil
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		var j *Job
		var t *tenantState
		for {
			j, t = p.nextLocked()
			if j != nil || p.closed {
				break
			}
			p.cond.Wait()
		}
		if j == nil {
			// Closed. Concurrency-capped leftovers still drain: every
			// job completion broadcasts, re-running nextLocked above.
			if p.queued > 0 && p.running > 0 {
				p.cond.Wait()
				p.mu.Unlock()
				continue
			}
			p.mu.Unlock()
			return
		}
		// AIMD update on the observed queueing delay of this dequeue.
		j.queueWait = p.cfg.now().Sub(j.enqueuedAt)
		if j.queueWait > p.cfg.TargetWait {
			p.window /= 2
			if floor := float64(p.cfg.Workers); p.window < floor {
				p.window = floor
			}
		} else {
			p.window += 1 / p.window
			if max := float64(p.cfg.Workers + p.cfg.QueueDepth); p.window > max {
				p.window = max
			}
		}
		p.mu.Unlock()

		start := p.cfg.now()
		p.run(j)

		p.mu.Lock()
		t.running--
		p.running--
		t.completed++
		p.completed++
		ms := float64(p.cfg.now().Sub(start)) / float64(time.Millisecond)
		if p.ewmaMS == 0 {
			p.ewmaMS = ms
		} else {
			p.ewmaMS = 0.8*p.ewmaMS + 0.2*ms
		}
		p.cond.Broadcast() // wake drain waiters, idle workers, capped tenants
		p.mu.Unlock()
	}
}

// ChargeCycles debits tenant's simulated-cycle bucket for work actually
// performed. The balance may go negative — budget exhaustion mid-job is
// allowed, further admissions are not — which is what the quota tests
// pin down.
func (p *Pool) ChargeCycles(tenant string, cycles int64) {
	if cycles <= 0 {
		return
	}
	p.mu.Lock()
	t := p.tenantLocked(tenant)
	t.cyclesUsed += cycles
	if t.cfg.CycleBudget > 0 {
		p.refillLocked(t)
		t.balance -= cycles
		// Fold the charge into the per-job estimate admission reserves
		// for in-flight work (plain average on first charge).
		if t.estCycles == 0 {
			t.estCycles = float64(cycles)
		} else {
			t.estCycles = 0.5*t.estCycles + 0.5*float64(cycles)
		}
	}
	p.mu.Unlock()
}

// Enqueue bypasses admission for journal-recovered jobs: acknowledged
// work is re-run even if the instant load would shed or quota-refuse a
// fresh request. The job still lands in its tenant's queue, so replay
// competes fairly once running.
func (p *Pool) Enqueue(j *Job) {
	j.recovered = true
	p.mu.Lock()
	t := p.tenantLocked(j.Tenant)
	j.enqueuedAt = p.cfg.now()
	t.queue = append(t.queue, j)
	t.admitted++
	p.queued++
	p.cond.Signal()
	p.mu.Unlock()
}

// Depth reports (queued, running) across all tenants.
func (p *Pool) Depth() (queued, running int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued, p.running
}

// Stats reports (sheds, completed, admission window) across all
// tenants.
func (p *Pool) Stats() (sheds, completed int64, window int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sheds, p.completed, int(p.window)
}

// TenantSnapshots returns every tenant's scheduling state in ring
// (first-seen) order. Cycle balances are refreshed first so the
// snapshot reflects refills earned while idle.
func (p *Pool) TenantSnapshots() []TenantSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(p.ring))
	for _, t := range p.ring {
		p.refillLocked(t)
		out = append(out, TenantSnapshot{
			Tenant:       t.name,
			Weight:       t.weight(),
			Queued:       len(t.queue),
			Running:      t.running,
			Admitted:     t.admitted,
			Dequeues:     t.dequeues,
			Completed:    t.completed,
			Sheds:        t.sheds,
			CyclesUsed:   t.cyclesUsed,
			CycleBudget:  t.cfg.CycleBudget,
			CycleBalance: t.balance,
		})
	}
	return out
}

// SetDraining stops admission (Submit returns ErrDraining) without
// touching queued or running work.
func (p *Pool) SetDraining() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
}

// Idle reports whether no work is queued or running.
func (p *Pool) Idle() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued == 0 && p.running == 0
}

// Stop shuts the workers down after the queues drain. Callers wanting a
// bounded stop abort running jobs first (Job.aborted) and SetDraining
// so nothing new arrives.
func (p *Pool) Stop() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
