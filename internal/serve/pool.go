package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// JobState is the lifecycle of a job inside the service.
type JobState int32

const (
	StateQueued JobState = iota
	StateRunning
	StateDone
	StateFailed
)

func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return "unknown"
}

// Job is one admitted simulation request and its live status. Status
// handlers read state/progress concurrently with the worker, hence the
// atomics; Result/Err are written exactly once, before done closes.
type Job struct {
	ID   string
	Key  uint64
	Spec JobSpec

	Progress Progress
	state    atomic.Int32

	// Terminal outcome: valid after done is closed.
	Result JobResult
	Err    string
	Class  string
	terr   error // the structured terminal error behind Err
	done   chan struct{}

	enqueuedAt   time.Time
	wallDeadline time.Time   // zero = no wall budget
	aborted      atomic.Bool // drain/cancel request, polled by the run
	recovered    bool        // journal-replayed job: bypasses admission
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState { return JobState(j.state.Load()) }

// Done exposes the completion channel (closed at terminal state).
func (j *Job) Done() <-chan struct{} { return j.done }

// TerminalError returns the structured failure (nil if the job
// succeeded or is not yet terminal). Callers discriminate with
// errors.Is against ErrJobDeadline and the simulation sentinels.
func (j *Job) TerminalError() error {
	select {
	case <-j.done:
		return j.terr
	default:
		return nil
	}
}

// PoolConfig tunes the worker pool and its admission control.
type PoolConfig struct {
	Workers    int           // concurrent simulations (default 2)
	QueueDepth int           // hard bound on waiting jobs (default 64)
	TargetWait time.Duration // queueing-delay target driving AIMD (default 2s)
	RetryMin   time.Duration // floor for the shed Retry-After hint (default 1s)

	// now is the injectable clock (tests drive admission decisions
	// deterministically); nil means time.Now.
	now func() time.Time
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TargetWait <= 0 {
		c.TargetWait = 2 * time.Second
	}
	if c.RetryMin <= 0 {
		c.RetryMin = time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Pool is the bounded worker pool with AIMD admission control — the
// extH send-window discipline transplanted to the service layer. The
// admission window bounds jobs in the system (queued + running): it
// grows additively while dequeued jobs started within the TargetWait
// budget and halves when queueing delay blows past it, floored at the
// worker count and capped at Workers+QueueDepth. Work past the window
// or the hard queue bound is refused with a *ShedError whose
// Retry-After estimates when capacity frees up — clients back off
// exponentially instead of the queue growing without bound.
type Pool struct {
	cfg PoolConfig
	run func(*Job)

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*Job
	running   int
	window    float64
	ewmaMS    float64 // EWMA of per-job service wall time
	draining  bool
	closed    bool
	wg        sync.WaitGroup
	sheds     int64
	completed int64
}

// NewPool starts cfg.Workers workers that execute run for each admitted
// job. run must mark the job terminal (the server's worker does).
func NewPool(cfg PoolConfig, run func(*Job)) *Pool {
	p := &Pool{cfg: cfg.withDefaults(), run: run}
	p.cond = sync.NewCond(&p.mu)
	p.window = float64(p.cfg.Workers)
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit admits or sheds a job. A shed returns *ShedError (429); a
// draining pool returns ErrDraining (503). Admitted jobs are queued
// FIFO and eventually run.
func (p *Pool) Submit(j *Job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining || p.closed {
		return ErrDraining
	}
	inSystem := len(p.queue) + p.running
	limit := int(p.window)
	if max := p.cfg.Workers + p.cfg.QueueDepth; limit > max {
		limit = max
	}
	if !j.recovered && (inSystem >= limit || len(p.queue) >= p.cfg.QueueDepth) {
		p.sheds++
		return &ShedError{Depth: inSystem, Window: limit, RetryAfter: p.retryAfterLocked()}
	}
	j.enqueuedAt = p.cfg.now()
	p.queue = append(p.queue, j)
	p.cond.Signal()
	return nil
}

// retryAfterLocked estimates when a shed client should come back: the
// backlog drained at the observed service rate, floored at RetryMin.
func (p *Pool) retryAfterLocked() time.Duration {
	perJob := time.Duration(p.ewmaMS) * time.Millisecond
	if perJob <= 0 {
		perJob = p.cfg.RetryMin
	}
	est := time.Duration(len(p.queue)+1) * perJob / time.Duration(p.cfg.Workers)
	if est < p.cfg.RetryMin {
		est = p.cfg.RetryMin
	}
	return est
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		j := p.queue[0]
		p.queue = p.queue[1:]
		p.running++
		// AIMD update on the observed queueing delay of this dequeue.
		wait := p.cfg.now().Sub(j.enqueuedAt)
		if wait > p.cfg.TargetWait {
			p.window /= 2
			if floor := float64(p.cfg.Workers); p.window < floor {
				p.window = floor
			}
		} else {
			p.window += 1 / p.window
			if max := float64(p.cfg.Workers + p.cfg.QueueDepth); p.window > max {
				p.window = max
			}
		}
		p.mu.Unlock()

		start := p.cfg.now()
		p.run(j)

		p.mu.Lock()
		p.running--
		p.completed++
		ms := float64(p.cfg.now().Sub(start)) / float64(time.Millisecond)
		if p.ewmaMS == 0 {
			p.ewmaMS = ms
		} else {
			p.ewmaMS = 0.8*p.ewmaMS + 0.2*ms
		}
		p.cond.Broadcast() // wake drain waiters and idle workers
		p.mu.Unlock()
	}
}

// Enqueue bypasses admission for journal-recovered jobs: acknowledged
// work is re-run even if the instant load would shed a fresh request.
func (p *Pool) Enqueue(j *Job) {
	j.recovered = true
	p.mu.Lock()
	j.enqueuedAt = p.cfg.now()
	p.queue = append(p.queue, j)
	p.cond.Signal()
	p.mu.Unlock()
}

// Depth reports (queued, running).
func (p *Pool) Depth() (queued, running int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue), p.running
}

// Stats reports (sheds, completed, admission window).
func (p *Pool) Stats() (sheds, completed int64, window int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sheds, p.completed, int(p.window)
}

// SetDraining stops admission (Submit returns ErrDraining) without
// touching queued or running work.
func (p *Pool) SetDraining() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
}

// Idle reports whether no work is queued or running.
func (p *Pool) Idle() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue) == 0 && p.running == 0
}

// Stop shuts the workers down after the queue drains. Callers wanting a
// bounded stop abort running jobs first (Job.aborted) and SetDraining
// so nothing new arrives.
func (p *Pool) Stop() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}
