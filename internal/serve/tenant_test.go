package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// submitTenant builds a minimal admitted job for a tenant.
func tenantJob(tenant string) *Job {
	return &Job{Tenant: tenant, done: make(chan struct{})}
}

// TestPoolDRRFairness: with weights 1:1:2 and every tenant saturating
// its queue, a single worker's dequeue counts converge to the weight
// ratio within one round's tolerance — the scheduler-level isolation
// invariant. The load is pre-enqueued and the worker is gated, so the
// dispatch sequence is deterministic.
func TestPoolDRRFairness(t *testing.T) {
	clock := newFakeClock()
	gate := make(chan struct{})
	p := NewPool(PoolConfig{
		Workers: 1, QueueDepth: 256, now: clock.now,
		Tenants: map[string]TenantConfig{
			"a": {Weight: 1}, "b": {Weight: 1}, "c": {Weight: 2},
		},
	}, func(j *Job) { <-gate; close(j.done) })
	defer func() { close(gate); p.Stop() }()

	// Saturate: enough backlog per tenant that no queue empties during
	// the measured window. Enqueue bypasses the global window, which is
	// exactly what a fairness test wants — admission is not under test.
	const perTenant = 40
	for i := 0; i < perTenant; i++ {
		for _, name := range []string{"a", "b", "c"} {
			p.Enqueue(tenantJob(name))
		}
	}

	const rounds = 8 // 8 DRR rounds x (1+1+2) = 32 dispatches
	const dispatches = rounds * 4
	for i := 0; i < dispatches; i++ {
		gate <- struct{}{}
	}
	waitFor(t, "measured dispatches to complete", func() bool {
		_, completed, _ := p.Stats()
		return completed == dispatches
	})

	counts := map[string]int64{}
	for _, snap := range p.TenantSnapshots() {
		counts[snap.Tenant] = snap.Dequeues
	}
	// Expected shares: a=8, b=8, c=16. The worker may have dequeued one
	// extra job beyond the 32 completions (it blocks on the gate after
	// dequeue), and a partial round skews each tenant by at most its
	// weight: tolerance = weight + 1.
	want := map[string]int64{"a": rounds * 1, "b": rounds * 1, "c": rounds * 2}
	tol := map[string]int64{"a": 2, "b": 2, "c": 3}
	for name, w := range want {
		got := counts[name]
		if got < w-tol[name] || got > w+tol[name] {
			t.Errorf("tenant %s: %d dequeues over %d rounds, want %d±%d (all: %v)",
				name, got, rounds, w, tol[name], counts)
		}
	}
}

// TestPoolTenantQueueQuota: a tenant at its MaxQueue is refused with a
// *QuotaError while another tenant is admitted normally — the refusal
// is per-tenant, not global. The tenant's MaxConcurrent cap is what
// builds its queue: with one job running, the rest must wait even
// though workers are idle, so the queue bound is reachable while the
// global window stays open.
func TestPoolTenantQueueQuota(t *testing.T) {
	clock := newFakeClock()
	gate := make(chan struct{})
	var started atomic.Int64
	p := NewPool(PoolConfig{
		Workers: 4, QueueDepth: 64, RetryMin: 100 * time.Millisecond, now: clock.now,
		Tenants: map[string]TenantConfig{"q": {MaxConcurrent: 1, MaxQueue: 2}},
	}, func(j *Job) { started.Add(1); <-gate; close(j.done) })
	defer func() { close(gate); p.Stop() }()

	if err := p.Submit(tenantJob("q")); err != nil {
		t.Fatalf("first submit refused: %v", err)
	}
	waitFor(t, "worker pickup", func() bool { return started.Load() == 1 })
	for i := 0; i < 2; i++ {
		if err := p.Submit(tenantJob("q")); err != nil {
			t.Fatalf("queued submit %d refused: %v", i, err)
		}
	}
	err := p.Submit(tenantJob("q"))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("submit past MaxQueue: %v, want ErrQuotaExceeded", err)
	}
	var q *QuotaError
	if !errors.As(err, &q) {
		t.Fatalf("error is %T, want *QuotaError", err)
	}
	if q.Tenant != "q" || q.Kind != "queue" || q.Limit != 2 {
		t.Errorf("QuotaError = %+v, want tenant q, kind queue, limit 2", q)
	}
	if q.RetryAfter < 100*time.Millisecond {
		t.Errorf("Retry-After %v below the configured floor", q.RetryAfter)
	}
	// The quota is q's alone: an unconfigured tenant sails through.
	if err := p.Submit(tenantJob("other")); err != nil {
		t.Fatalf("other tenant refused by q's quota: %v", err)
	}
	for _, snap := range p.TenantSnapshots() {
		if snap.Tenant == "q" && snap.Sheds != 1 {
			t.Errorf("tenant q sheds = %d, want 1", snap.Sheds)
		}
		if snap.Tenant == "other" && snap.Sheds != 0 {
			t.Errorf("tenant other sheds = %d, want 0", snap.Sheds)
		}
	}
}

// TestPoolCycleQuota covers the token-bucket edges: exhaustion mid-job
// drives the balance negative without killing the job, new submits are
// refused with kind "cycles" until the refill turns the balance
// positive, and a job admitted before exhaustion stays queued and runs.
func TestPoolCycleQuota(t *testing.T) {
	clock := newFakeClock()
	gate := make(chan struct{})
	var started atomic.Int64
	p := NewPool(PoolConfig{
		Workers: 1, QueueDepth: 64, RetryMin: 50 * time.Millisecond, now: clock.now,
		Tenants: map[string]TenantConfig{"m": {CycleBudget: 1000, CycleRefill: 1000}},
	}, func(j *Job) { started.Add(1); <-gate; close(j.done) })
	defer func() { close(gate); p.Stop() }()

	// Two admits while the balance is positive: one runs, one queues.
	running := tenantJob("m")
	queuedJob := tenantJob("m")
	if err := p.Submit(running); err != nil {
		t.Fatalf("first submit refused: %v", err)
	}
	waitFor(t, "worker pickup", func() bool { return started.Load() == 1 })
	if err := p.Submit(queuedJob); err != nil {
		t.Fatalf("second submit refused: %v", err)
	}

	// The running job burns far past the budget: exhaustion mid-job is
	// charged, not prevented.
	p.ChargeCycles("m", 2500) // balance 1000 -> -1500
	err := p.Submit(tenantJob("m"))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("submit with a negative balance: %v, want ErrQuotaExceeded", err)
	}
	var q *QuotaError
	if !errors.As(err, &q) || q.Kind != "cycles" {
		t.Fatalf("error %v, want *QuotaError kind cycles", err)
	}
	// Two jobs in flight reserve 2*2500 on top of the 1500 deficit:
	// 6501 cycles short at 1000/s is ~6.5s.
	if q.RetryAfter < 5*time.Second || q.RetryAfter > 8*time.Second {
		t.Errorf("cycle Retry-After %v, want ~6.5s", q.RetryAfter)
	}

	// Refill while queued: the already-admitted job is untouched by the
	// exhausted bucket — it dequeues and runs as soon as the worker
	// frees, even before any refill.
	gate <- struct{}{}
	waitFor(t, "queued job dispatched despite exhaustion", func() bool { return started.Load() == 2 })

	// Not enough elapsed time: still refused (and the running job's
	// in-flight reservation would hold the door shut regardless).
	clock.advance(500 * time.Millisecond) // -1500 + 500 = -1000
	if err := p.Submit(tenantJob("m")); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("submit after partial refill: %v, want ErrQuotaExceeded", err)
	}
	// The second job finishes cheap: its reservation converts to a real
	// charge and the per-job estimate decays toward the observed mix.
	gate <- struct{}{}
	p.ChargeCycles("m", 100) // balance -1000 -> -1100
	waitFor(t, "second job drained", func() bool {
		for _, snap := range p.TenantSnapshots() {
			if snap.Tenant == "m" {
				return snap.Running == 0 && snap.Queued == 0
			}
		}
		return false
	})
	// Past the break-even point, with nothing in flight to reserve for,
	// the tenant is admitted again.
	clock.advance(1300 * time.Millisecond) // -1100 + 1300 = +200
	if err := p.Submit(tenantJob("m")); err != nil {
		t.Fatalf("submit after refill: %v, want admitted", err)
	}
	for _, snap := range p.TenantSnapshots() {
		if snap.Tenant == "m" {
			if snap.CyclesUsed != 2600 {
				t.Errorf("cycles_used %d, want 2600", snap.CyclesUsed)
			}
			if snap.CycleBalance > snap.CycleBudget {
				t.Errorf("balance %d above budget %d", snap.CycleBalance, snap.CycleBudget)
			}
		}
	}
}

// TestPoolMaxConcurrent: a tenant at its concurrency cap leaves workers
// to other tenants; its surplus stays queued until one of its own jobs
// finishes.
func TestPoolMaxConcurrent(t *testing.T) {
	clock := newFakeClock()
	gates := map[string]chan struct{}{
		"capped": make(chan struct{}),
		"free":   make(chan struct{}),
	}
	var started atomic.Int64
	p := NewPool(PoolConfig{
		Workers: 3, QueueDepth: 64, now: clock.now,
		Tenants: map[string]TenantConfig{"capped": {MaxConcurrent: 1}},
	}, func(j *Job) { started.Add(1); <-gates[j.Tenant]; close(j.done) })
	defer p.Stop()

	if err := p.Submit(tenantJob("capped")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := p.Submit(tenantJob("capped")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := p.Submit(tenantJob("free")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// The free tenant and one capped job run; the second capped job
	// stays queued even though a worker is idle.
	waitFor(t, "one capped + one free running", func() bool { return started.Load() == 2 })
	time.Sleep(20 * time.Millisecond)
	if n := started.Load(); n != 2 {
		t.Fatalf("%d jobs running, want 2 (capped tenant over its cap)", n)
	}
	// Finishing the capped job releases the next one.
	gates["capped"] <- struct{}{}
	waitFor(t, "second capped job dispatched", func() bool { return started.Load() == 3 })
	gates["capped"] <- struct{}{}
	gates["free"] <- struct{}{}
	waitFor(t, "drain", p.Idle)
}

// TestPoolPerTenantRetryAfter: when the hard queue bound refuses both a
// flooding tenant and a nearly-idle one, each shed carries a
// Retry-After derived from the refused tenant's own backlog, so the
// quiet tenant's backoff is strictly smaller than the flooder's.
// Also pins the weighted-fair admission guarantee: a tenant below its
// window share is admitted even while the flood holds the window full.
func TestPoolPerTenantRetryAfter(t *testing.T) {
	clock := newFakeClock()
	gate := make(chan struct{})
	var started atomic.Int64
	p := NewPool(PoolConfig{
		Workers: 1, QueueDepth: 6, RetryMin: 10 * time.Millisecond, now: clock.now,
	}, func(j *Job) { started.Add(1); <-gate; close(j.done) })
	defer func() { close(gate); p.Stop() }()

	// Build the noisy backlog through the recovery path (Enqueue skips
	// admission, which keeps the setup deterministic): one job runs,
	// four wait in noisy's queue. The AIMD window (one worker) is now
	// far exceeded.
	for i := 0; i < 5; i++ {
		p.Enqueue(tenantJob("noisy"))
	}
	waitFor(t, "worker pickup", func() bool { return started.Load() == 1 })

	// A fresh noisy submit sheds; its hint prices in its own four-deep
	// backlog.
	err := p.Submit(tenantJob("noisy"))
	var noisyShed *ShedError
	if !errors.As(err, &noisyShed) {
		t.Fatalf("noisy submit: %v, want *ShedError", err)
	}
	if noisyShed.Tenant != "noisy" {
		t.Errorf("shed tenant %q, want noisy", noisyShed.Tenant)
	}

	// Weighted-fair admission: the quiet tenant is below its share of
	// the window, so the flood-filled window does not refuse it.
	if err := p.Submit(tenantJob("quiet")); err != nil {
		t.Fatalf("quiet tenant refused below its fair share: %v", err)
	}
	// The next quiet submit is at its share with the window full, so it
	// sheds — but its hint reflects quiet's one-deep queue, not noisy's
	// five.
	err = p.Submit(tenantJob("quiet"))
	var quietShed *ShedError
	if !errors.As(err, &quietShed) {
		t.Fatalf("quiet submit at the hard bound: %v, want *ShedError", err)
	}
	if quietShed.RetryAfter >= noisyShed.RetryAfter {
		t.Errorf("quiet Retry-After %v not below noisy's %v — backoff is not per-tenant",
			quietShed.RetryAfter, noisyShed.RetryAfter)
	}
}

// TestCacheCostAwareEviction: past capacity the cheapest-to-recompute
// entry is evicted first, ties oldest-first, and evictions are counted
// globally and against the inserting tenant.
func TestCacheCostAwareEviction(t *testing.T) {
	c := NewCache(2)
	c.Put(1, "a", JobResult{Digest: "d1", Cycles: 1_000_000})
	c.Put(2, "a", JobResult{Digest: "d2", Cycles: 10})
	c.Put(3, "b", JobResult{Digest: "d3", Cycles: 500_000})

	if _, ok := c.Get(2, "a"); ok {
		t.Error("cheapest entry (key 2) survived eviction")
	}
	if r, ok := c.Get(1, "a"); !ok || r.Digest != "d1" {
		t.Error("most expensive entry (key 1) was evicted")
	}
	if r, ok := c.Get(3, "b"); !ok || r.Digest != "d3" {
		t.Error("new entry (key 3) missing")
	}
	hits, misses, evictions, entries := c.Stats()
	if evictions != 1 || entries != 2 {
		t.Errorf("stats: evictions %d entries %d, want 1 and 2", evictions, entries)
	}
	if hits != 2 || misses != 1 {
		t.Errorf("stats: hits %d misses %d, want 2 and 1", hits, misses)
	}
	ts := c.TenantStats()
	if ts["b"].Evictions != 1 {
		t.Errorf("inserting tenant b charged %d evictions, want 1", ts["b"].Evictions)
	}
	if ts["a"].Hits != 1 || ts["b"].Hits != 1 {
		t.Errorf("per-tenant hits a=%d b=%d, want 1 and 1", ts["a"].Hits, ts["b"].Hits)
	}

	// Equal costs: the older entry goes first.
	c2 := NewCache(2)
	c2.Put(10, "x", JobResult{Digest: "old", Cycles: 100})
	c2.Put(11, "x", JobResult{Digest: "mid", Cycles: 100})
	c2.Put(12, "x", JobResult{Digest: "new", Cycles: 100})
	if _, ok := c2.Get(10, "x"); ok {
		t.Error("equal-cost eviction did not take the oldest entry")
	}
	if _, ok := c2.Get(11, "x"); !ok {
		t.Error("equal-cost eviction took the wrong entry")
	}
}

// TestHTTPTenantRouting: the X-T3D-Tenant header names the tenant, a
// tenant in the spec body wins over the header, and the tenant rides
// the status wire form.
func TestHTTPTenantRouting(t *testing.T) {
	s := newTestServer(t, Config{})
	defer s.Drain(5 * time.Second)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body, header string) JobStatus {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if header != "" {
			req.Header.Set("X-T3D-Tenant", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit status %d", resp.StatusCode)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	if st := post(`{"app":"em3d","pes":2,"nodes_per_pe":8,"degree":2,"iters":1,"seed":301}`, "alice"); st.Tenant != "alice" {
		t.Errorf("header tenant: job tenant %q, want alice", st.Tenant)
	}
	if st := post(`{"app":"em3d","pes":2,"nodes_per_pe":8,"degree":2,"iters":1,"seed":302,"tenant":"bob"}`, "alice"); st.Tenant != "bob" {
		t.Errorf("body tenant must win: job tenant %q, want bob", st.Tenant)
	}
	if st := post(`{"app":"em3d","pes":2,"nodes_per_pe":8,"degree":2,"iters":1,"seed":303}`, ""); st.Tenant != DefaultTenant {
		t.Errorf("unlabeled submit: job tenant %q, want %q", st.Tenant, DefaultTenant)
	}

	// An invalid tenant name is a 400, not a scheduling surprise.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs",
		strings.NewReader(`{"app":"em3d","seed":304}`))
	req.Header.Set("X-T3D-Tenant", "no spaces allowed")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid tenant name: status %d, want 400", resp.StatusCode)
	}

	// A tenant served purely from the shared cache never touches the
	// scheduler, but its hits must still show up on /statusz.
	spec := quickSpec(305)
	spec.Tenant = "alice"
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	awaitJob(t, j)
	spec.Tenant = "cache-rider"
	if _, err := s.Submit(spec); err != nil {
		t.Fatal(err)
	}
	var rider *TenantStatus
	for _, tn := range s.Status().Tenants {
		if tn.Tenant == "cache-rider" {
			tn := tn
			rider = &tn
		}
	}
	if rider == nil {
		t.Fatal("cache-only tenant missing from statusz")
	}
	if rider.CacheHits != 1 || rider.Admitted != 0 {
		t.Errorf("cache-only tenant: hits %d admitted %d, want 1 and 0", rider.CacheHits, rider.Admitted)
	}
}

// TestHTTPQuota429: a tenant over its queue quota gets 429 with a
// positive Retry-After while another tenant's submit is admitted, and
// /statusz breaks the refusals out per tenant.
func TestHTTPQuota429(t *testing.T) {
	// Noisy's concurrency cap is what lets its queue fill while the
	// global window (3 workers) still has room for the quiet tenant.
	s := newTestServer(t, Config{Pool: PoolConfig{
		Workers: 3, QueueDepth: 64, RetryMin: time.Second,
		Tenants: map[string]TenantConfig{"noisy": {MaxConcurrent: 1, MaxQueue: 1}},
	}})
	defer s.Drain(60 * time.Second)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(tenant string, seed int64) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"app":"em3d","pes":8,"nodes_per_pe":120,"degree":8,"iters":2,"seed":%d,"tenant":%q}`, seed, tenant)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Flood noisy with distinct slow specs until its one-deep queue
	// quota trips.
	var got429 *http.Response
	for seed := int64(400); seed < 420; seed++ {
		resp := submit("noisy", seed)
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("flood submit: status %d", resp.StatusCode)
		}
	}
	if got429 == nil {
		t.Fatal("noisy tenant never hit its queue quota")
	}
	if ra, err := strconv.Atoi(got429.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("quota 429 Retry-After %q, want positive integer seconds", got429.Header.Get("Retry-After"))
	}
	// The quiet tenant is untouched by noisy's quota.
	if resp := submit("quiet", 450); resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("quiet tenant refused while noisy at quota: status %d", resp.StatusCode)
	}

	zr, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var z Statusz
	if err := json.NewDecoder(zr.Body).Decode(&z); err != nil {
		t.Fatal(err)
	}
	zr.Body.Close()
	byName := map[string]TenantStatus{}
	for _, tn := range z.Tenants {
		byName[tn.Tenant] = tn
	}
	if byName["noisy"].Sheds < 1 {
		t.Errorf("statusz: noisy sheds %d, want >= 1", byName["noisy"].Sheds)
	}
	if byName["quiet"].Sheds != 0 {
		t.Errorf("statusz: quiet sheds %d, want 0", byName["quiet"].Sheds)
	}
	if byName["quiet"].Admitted < 1 {
		t.Errorf("statusz: quiet admitted %d, want >= 1", byName["quiet"].Admitted)
	}
}

// TestJournalTenantReplay: tenant identity survives the journal — a
// tenant-tagged job killed mid-run replays under its tenant, and a
// legacy pre-tenant record (no tenant field anywhere) replays as the
// default tenant.
func TestJournalTenantReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenant.journal")

	spec := slowSpec(61)
	spec.Tenant = "alice"
	s1 := newTestServer(t, Config{JournalPath: path, Pool: PoolConfig{Workers: 1}})
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	s1.Kill() // before completion: the submitted record is all there is

	s2 := newTestServer(t, Config{JournalPath: path, Pool: PoolConfig{Workers: 1}})
	j2, err := s2.Job(j1.ID)
	if err != nil {
		t.Fatalf("recovered job missing: %v", err)
	}
	if j2.Tenant != "alice" {
		t.Errorf("recovered job tenant %q, want alice", j2.Tenant)
	}
	awaitJob(t, j2)
	if j2.State() != StateDone {
		t.Fatalf("recovered job ended %v (%s)", j2.State(), j2.Err)
	}
	if err := s2.Drain(30 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Legacy upgrade: a pre-tenant journal written by an older server —
	// plain unchecksummed JSON lines, no tenant field — replays as the
	// default tenant.
	legacyPath := filepath.Join(dir, "legacy.journal")
	legacySpec := quickSpec(62)
	line, err := json.Marshal(Record{Type: recSubmitted, ID: "j00000001",
		Key: KeyString(legacySpec), Spec: &legacySpec})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacyPath, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := newTestServer(t, Config{JournalPath: legacyPath, Pool: PoolConfig{Workers: 1}})
	j3, err := s3.Job("j00000001")
	if err != nil {
		t.Fatalf("legacy job not recovered: %v", err)
	}
	if j3.Tenant != DefaultTenant {
		t.Errorf("legacy job tenant %q, want %q", j3.Tenant, DefaultTenant)
	}
	awaitJob(t, j3)
	if j3.State() != StateDone {
		t.Fatalf("legacy job ended %v (%s)", j3.State(), j3.Err)
	}
	if err := s3.Drain(30 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}
