package serve

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/hostfs"
)

// TestSoakKillStormRTO is the recovery-time acceptance soak: a long
// checkpointed job is SIGKILL-simulated (Server.Kill, journal abandoned
// mid-flight) several times, on a disk injecting write/short-write/sync
// faults, and after every restart the re-executed work — progress at
// the kill minus the cycles banked by the checkpoint the restart
// resumed from — must stay within ~1.5 checkpoint intervals, plus one
// interval per checkpoint attempt the faulty disk ate (each failure
// legitimately widens the gap between durable checkpoints by one
// cadence). The job must still finish with the digest an uninterrupted
// run produces, and no goroutine may outlive the storm.
func TestSoakKillStormRTO(t *testing.T) {
	if testing.Short() {
		t.Log("-short: one seed instead of three")
	}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	baseline := runtime.NumGoroutine()
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runKillStorm(t, seed)
		})
	}
	checkGoroutines(t, baseline)
}

func runKillStorm(t *testing.T, seed int64) {
	// Calibrate the cadence to the job: the RTO bound is stated in
	// checkpoint intervals, which only holds when the interval dominates
	// the epoch length (a checkpoint can land no finer than an epoch
	// barrier). Three epochs per interval keeps the 0.5-interval slack
	// honest.
	spec := ckptSpec(7000 + seed)
	ref, err := runSpec(spec, 0, nil, nil, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	epoch := ref.Cycles / int64(spec.Iters)
	interval := 3 * epoch
	if interval < MinCheckpointCycles {
		interval = MinCheckpointCycles
	}
	spec.CheckpointCycles = interval

	root := t.TempDir()
	ckdir := filepath.Join(root, "ck")
	if err := ckpt.MkdirAll(ckdir); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	stashArtifactsOnFailure(t, []string{root, ckdir}, nil)
	newServer := func() *Server {
		ffs := hostfs.NewFault(hostfs.OS(), hostfs.FaultConfig{
			Seed: uint64(seed), WriteErrRate: 0.02, ShortWriteRate: 0.02, SyncErrRate: 0.02,
		})
		return newTestServer(t, Config{
			JournalPath:   filepath.Join(root, "j.journal"),
			CheckpointDir: ckdir,
			FS:            ffs,
			Pool:          PoolConfig{Workers: 1, QueueDepth: 8},
			Logf:          t.Logf,
		})
	}

	s := newServer()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	id := j.ID

	const kills = 3
	resumes := 0
	for k := 0; k < kills; k++ {
		// Let the job make real progress past its resume point before the
		// next kill; the extra half-interval per round shifts the kill
		// phase relative to the checkpoint cadence so not every kill lands
		// at a boundary. Bail out of the storm if the job finishes first.
		target := j.Progress.ResumeCycles.Load() + 2*interval + int64(k)*interval/2
		done := false
		deadline := time.Now().Add(30 * time.Second)
		for j.Progress.Cycles.Load() < target {
			select {
			case <-j.Done():
				done = true
			case <-time.After(time.Millisecond):
			}
			if done || time.Now().After(deadline) {
				break
			}
		}
		if done {
			break
		}
		killCycles := j.Progress.Cycles.Load()
		killFails := j.Progress.CheckpointFails.Load()
		s.Kill()

		s = newServer()
		j2, err := s.Job(id)
		if err != nil {
			t.Fatalf("kill %d: job not recovered: %v", k, err)
		}
		j = j2
		// Wait for the resume decision (Cycles goes positive once the
		// ladder is resolved — pre-seeded with the base on a resume, first
		// epoch boundary otherwise).
		deadline = time.Now().Add(30 * time.Second)
		for j.Progress.Cycles.Load() == 0 {
			select {
			case <-j.Done():
			case <-time.After(time.Millisecond):
			}
			if time.Now().After(deadline) {
				t.Fatalf("kill %d: recovered job never started", k)
			}
		}
		resumeBase := j.Progress.ResumeCycles.Load()
		if j.Progress.Resumed.Load() {
			resumes++
		}
		reexec := killCycles - resumeBase
		limit := int64((1.5 + float64(killFails)) * float64(interval))
		t.Logf("kill %d: killed at %d cycles (%d checkpoint fails), resumed from %d — re-executes %d, limit %d",
			k, killCycles, killFails, resumeBase, reexec, limit)
		if reexec > limit {
			t.Fatalf("kill %d: re-executed work %d cycles exceeds (1.5+%d fails)×interval = %d — RTO bound broken",
				k, reexec, killFails, limit)
		}
	}

	awaitJob(t, j)
	if j.State() != StateDone {
		t.Fatalf("job ended %v after the storm: %s", j.State(), j.Err)
	}
	if j.Result.Digest != ref.Digest {
		t.Fatalf("digest %s after the storm, uninterrupted %s", j.Result.Digest, ref.Digest)
	}
	if resumes == 0 {
		t.Fatalf("no restart ever resumed from a checkpoint — the storm exercised nothing")
	}
	if err := s.Drain(10 * time.Second); err != nil {
		// The workers are stopped either way; the fault disk may still eat
		// the journal's closing fsync. An injected close error is the
		// disk's problem, not a recovery bug.
		t.Logf("Drain on the faulty disk: %v", err)
	}
}
