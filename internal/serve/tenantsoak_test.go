package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

// wbRun is one well-behaved tenant's measured pass: it submits jobs
// distinct specs one after another (steady closed-loop load), waits for
// each, verifies the digest against the batch harness, and records
// completion rate and queue waits.
type wbRun struct {
	completed int
	elapsed   time.Duration
	waits     []time.Duration
}

func (r wbRun) rate() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.completed) / r.elapsed.Seconds()
}

func p99(waits []time.Duration) time.Duration {
	if len(waits) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), waits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)*99)/100]
}

// runWellBehaved drives one tenant through its job list and measures.
func runWellBehaved(t *testing.T, s *Server, tenant string, specs []JobSpec, want []string) (wbRun, error) {
	var r wbRun
	start := time.Now()
	for i, sp := range specs {
		sp.Tenant = tenant
		var j *Job
		admitBy := time.Now().Add(60 * time.Second)
		for {
			var err error
			j, err = s.Submit(sp)
			if err == nil {
				break
			}
			if !errors.Is(err, ErrShed) && !errors.Is(err, ErrQuotaExceeded) {
				return r, fmt.Errorf("tenant %s job %d: %w", tenant, i, err)
			}
			if time.Now().After(admitBy) {
				return r, fmt.Errorf("tenant %s job %d: never admitted", tenant, i)
			}
			time.Sleep(2 * time.Millisecond)
		}
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			return r, fmt.Errorf("tenant %s job %s stuck", tenant, j.ID)
		}
		if j.State() != StateDone {
			return r, fmt.Errorf("tenant %s job %s ended %v (%s)", tenant, j.ID, j.State(), j.Err)
		}
		if j.Result.Digest != want[i] {
			return r, fmt.Errorf("tenant %s job %s digest %s, batch says %s", tenant, j.ID, j.Result.Digest, want[i])
		}
		r.completed++
		r.waits = append(r.waits, j.QueueWait())
	}
	r.elapsed = time.Since(start)
	return r, nil
}

// TestSoakNoisyNeighbor is the tenant-isolation acceptance soak, run
// across 3 seeds: an adversarial tenant floods duplicate-heavy
// expensive jobs while two well-behaved tenants submit steady streams
// of distinct work. Per seed the well-behaved tenants are measured solo
// first (same pool shape, no flood), then under the flood; they must
// retain at least half their solo completion rate, their p99 queueing
// delay must stay within a bounded factor, every digest must match the
// batch harness, and nothing may leak.
func TestSoakNoisyNeighbor(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			baseline := runtime.NumGoroutine()

			// Three workers; the noisy tenant is capped to one of them, a
			// short queue, and a simulated-cycle budget that refills at
			// roughly one expensive job per second — so admission sheds
			// its flood with 429s and the cycle quota bounds how much
			// compute it can sustain, while the well-behaved tenants keep
			// their fair share.
			poolCfg := func() PoolConfig {
				return PoolConfig{
					Workers: 3, QueueDepth: 16, RetryMin: time.Millisecond,
					Tenants: map[string]TenantConfig{
						"wb-a": {Weight: 2},
						"wb-b": {Weight: 2},
						"noisy": {Weight: 1, MaxConcurrent: 1, MaxQueue: 1,
							CycleBudget: 120_000, CycleRefill: 120_000},
					},
				}
			}

			const jobsPerTenant = 20
			mkSpecs := func(tenant int64) ([]JobSpec, []string) {
				specs := make([]JobSpec, jobsPerTenant)
				want := make([]string, jobsPerTenant)
				for i := range specs {
					// Distinct seeds per (soak seed, tenant, job): every
					// job is a real simulation, so the measured rate is
					// worker throughput, not cache hits masking the flood.
					// Mid-size specs (~tens of ms) keep the measurement
					// window large against scheduler noise.
					specs[i] = JobSpec{App: AppEM3D, PEs: 4, NodesPerPE: 60, Degree: 4,
						Iters: 2, Seed: seed*100_000 + tenant*1_000 + int64(i)}
					want[i] = referenceDigest(t, specs[i])
				}
				return specs, want
			}
			specsA, wantA := mkSpecs(1)
			specsB, wantB := mkSpecs(2)

			measure := func(s *Server, flood bool) (ra, rb wbRun) {
				stop := make(chan struct{})
				var floodWG sync.WaitGroup
				if flood {
					// The adversary: expensive specs, duplicate-heavy (a
					// 4-seed pool, so dedup and the cache absorb most of
					// the flood) plus a distinct tail to keep real load
					// coming. Refusals are ignored — adversaries do not
					// back off.
					floodWG.Add(1)
					go func() {
						defer floodWG.Done()
						var jobs []*Job
						for n := 0; ; n++ {
							select {
							case <-stop:
								// Let admitted flood jobs finish so Drain
								// is not fighting the adversary.
								for _, j := range jobs {
									select {
									case <-j.Done():
									case <-time.After(60 * time.Second):
									}
								}
								return
							default:
							}
							sp := slowSpec(seed*1_000_000 + int64(n%4))
							if n%8 == 7 {
								sp = slowSpec(seed*1_000_000 + 100 + int64(n))
							}
							sp.Iters = 1 // ~3x a well-behaved job; ~50k cycles
							sp.Tenant = "noisy"
							if j, err := s.Submit(sp); err == nil {
								jobs = append(jobs, j)
							}
							time.Sleep(time.Millisecond)
						}
					}()
				}
				var wg sync.WaitGroup
				var errA, errB error
				wg.Add(2)
				go func() { defer wg.Done(); ra, errA = runWellBehaved(t, s, "wb-a", specsA, wantA) }()
				go func() { defer wg.Done(); rb, errB = runWellBehaved(t, s, "wb-b", specsB, wantB) }()
				wg.Wait()
				close(stop)
				floodWG.Wait()
				if errA != nil {
					t.Fatal(errA)
				}
				if errB != nil {
					t.Fatal(errB)
				}
				return ra, rb
			}

			// Solo baseline: the well-behaved pair with no adversary.
			solo := newTestServer(t, Config{Pool: poolCfg()})
			soloA, soloB := measure(solo, false)
			if err := solo.Drain(60 * time.Second); err != nil {
				t.Fatalf("solo drain: %v", err)
			}

			// Contended: same shape plus the flood.
			loud := newTestServer(t, Config{Pool: poolCfg()})
			contA, contB := measure(loud, true)
			st := loud.Status()
			if err := loud.Drain(60 * time.Second); err != nil {
				t.Fatalf("contended drain: %v", err)
			}

			// Isolation bound: each well-behaved tenant keeps >= 50% of
			// its solo completion rate under the flood.
			for _, c := range []struct {
				name       string
				solo, cont wbRun
			}{{"wb-a", soloA, contA}, {"wb-b", soloB, contB}} {
				if c.cont.completed != jobsPerTenant {
					t.Errorf("%s completed %d/%d jobs under flood", c.name, c.cont.completed, jobsPerTenant)
				}
				t.Logf("%s: solo %.1f jobs/s (p99 wait %v), flooded %.1f jobs/s (p99 wait %v)",
					c.name, c.solo.rate(), p99(c.solo.waits), c.cont.rate(), p99(c.cont.waits))
				if ratio := c.cont.rate() / c.solo.rate(); ratio < 0.5 {
					t.Errorf("%s completion rate under flood is %.0f%% of solo (%.1f vs %.1f jobs/s), want >= 50%%",
						c.name, 100*ratio, c.cont.rate(), c.solo.rate())
				}
				// p99 queueing delay: bounded factor of solo, with an
				// absolute floor so near-zero solo waits cannot make the
				// bound vacuous-strict.
				soloP99 := p99(c.solo.waits)
				if floor := 25 * time.Millisecond; soloP99 < floor {
					soloP99 = floor
				}
				if contP99 := p99(c.cont.waits); contP99 > 10*soloP99 {
					t.Errorf("%s p99 queue wait %v under flood, bound is 10x solo (%v)",
						c.name, contP99, 10*soloP99)
				}
			}
			// The flood must actually have pressured the service — an
			// adversary that never got throttled or absorbed proves
			// nothing.
			var noisy TenantStatus
			for _, tn := range st.Tenants {
				if tn.Tenant == "noisy" {
					noisy = tn
				}
			}
			if noisy.Admitted == 0 {
				t.Error("noisy tenant never admitted — flood did not load the service")
			}
			if noisy.Sheds == 0 {
				t.Error("noisy tenant never throttled — quotas not exercised")
			}
			checkGoroutines(t, baseline)
		})
	}
}
