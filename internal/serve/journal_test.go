package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/hostfs"
)

func openTestJournal(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", path, err)
	}
	return j, recs
}

// TestJournalRoundTrip: appended records replay in order on reopen.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, recs := openTestJournal(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	spec := JobSpec{App: AppEM3D, Seed: 7}
	res := JobResult{App: AppEM3D, Digest: "00deadbeef00cafe", Cycles: 123, Validated: true}
	want := []Record{
		{Type: recSubmitted, ID: "j00000001", Key: KeyString(spec), Spec: &spec},
		{Type: recRunning, ID: "j00000001"},
		{Type: recDone, ID: "j00000001", Key: KeyString(spec), Spec: &spec, Result: &res},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, got := openTestJournal(t, path)
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].ID != want[i].ID || got[i].Key != want[i].Key {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[2].Result == nil || got[2].Result.Digest != res.Digest {
		t.Errorf("done record lost the result: %+v", got[2].Result)
	}
}

// TestJournalTornTail: a partial final line — the signature of a crash
// mid-append — is dropped and truncated away; the journal then appends
// cleanly from the last good record.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, _ := openTestJournal(t, path)
	spec := JobSpec{App: AppEM3D, Seed: 7}
	for _, id := range []string{"j00000001", "j00000002"} {
		if err := j.Append(Record{Type: recSubmitted, ID: id, Spec: &spec}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	active := j.ActiveSegment()
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate the crash: half a record, no newline, on the active
	// segment (records live in segments now, not the bare base path).
	f, err := os.OpenFile(active, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"type":"done","id":"j0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs := openTestJournal(t, path)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records past a torn tail, want 2", len(recs))
	}
	if err := j2.Append(Record{Type: recDone, ID: "j00000001", Spec: &spec}); err != nil {
		t.Fatalf("Append after torn-tail recovery: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j3, recs := openTestJournal(t, path)
	defer j3.Close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after healing, want 3", len(recs))
	}
	if recs[2].Type != recDone || recs[2].ID != "j00000001" {
		t.Errorf("healed tail record wrong: %+v", recs[2])
	}
}

// TestJournalMidFileCorruption: a corrupt record that is NOT the final
// line cannot be a torn append — refusing to open beats silently
// dropping acknowledged jobs. The legacy (bare-path, unchecksummed)
// format gets the same treatment.
func TestJournalMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	content := `{"type":"submitted","id":"j00000001"}` + "\n" +
		`GARBAGE NOT JSON` + "\n" +
		`{"type":"done","id":"j00000001"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(path)
	if err == nil {
		t.Fatal("OpenJournal accepted mid-file corruption")
	}
	var host *HostError
	if !errors.As(err, &host) {
		t.Fatalf("corruption error is %T, want *HostError", err)
	}
}

// TestJournalChecksumFlip: a single flipped byte in a checksummed
// record — silent read-back corruption, not a torn append — is detected
// by the CRC. Mid-file it refuses the open; on the final line it is
// indistinguishable from a torn tail and is dropped.
func TestJournalChecksumFlip(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "j.journal")
		j, _ := openTestJournal(t, path)
		spec := JobSpec{App: AppEM3D, Seed: 7}
		for _, id := range []string{"j00000001", "j00000002"} {
			if err := j.Append(Record{Type: recSubmitted, ID: id, Spec: &spec}); err != nil {
				t.Fatal(err)
			}
		}
		active := j.ActiveSegment()
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return path, active
	}
	flip := func(t *testing.T, seg string, line int) {
		t.Helper()
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a payload byte inside the chosen line (0-indexed).
		off, cur := 0, 0
		for cur < line {
			for data[off] != '\n' {
				off++
			}
			off++
			cur++
		}
		data[off+12] ^= 0x01
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("mid-file refused", func(t *testing.T) {
		path, seg := build(t)
		flip(t, seg, 0)
		_, _, err := OpenJournal(path)
		var host *HostError
		if !errors.As(err, &host) {
			t.Fatalf("flipped mid-file record: err = %v, want *HostError refusal", err)
		}
	})
	t.Run("tail dropped", func(t *testing.T) {
		path, seg := build(t)
		flip(t, seg, 1)
		j, recs, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("flipped tail record should be dropped, got %v", err)
		}
		defer j.Close()
		if len(recs) != 1 || recs[0].ID != "j00000001" {
			t.Fatalf("replayed %+v, want only j00000001", recs)
		}
	})
}

// TestJournalEmptyAndSingleTorn: the degenerate segments — completely
// empty, or holding nothing but one torn record — open cleanly as an
// empty journal and accept appends.
func TestJournalEmptyAndSingleTorn(t *testing.T) {
	for name, content := range map[string]string{
		"empty":      "",
		"singleTorn": `deadbeef {"type":"subm`,
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "j.journal")
			if err := os.WriteFile(path+".seg000001", []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			j, recs, err := OpenJournal(path)
			if err != nil {
				t.Fatalf("OpenJournal: %v", err)
			}
			if len(recs) != 0 {
				t.Fatalf("replayed %d records from %s segment", len(recs), name)
			}
			if err := j.Append(Record{Type: recSubmitted, ID: "j00000001"}); err != nil {
				t.Fatalf("Append: %v", err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			j2, recs := openTestJournal(t, path)
			defer j2.Close()
			if len(recs) != 1 || recs[0].ID != "j00000001" {
				t.Fatalf("after heal, replayed %+v", recs)
			}
		})
	}
}

// TestJournalRotationBoundary: records spanning a segment rotation all
// replay, in order, and rotation actually produced multiple segments.
func TestJournalRotationBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, _, err := OpenJournalWith(path, JournalOptions{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{App: AppEM3D, Seed: 7}
	const n = 12
	for i := 1; i <= n; i++ {
		id := jobID(i)
		if err := j.Append(Record{Type: recSubmitted, ID: id, Spec: &spec}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if h := j.Health(); h.Rotations == 0 || h.Segments < 2 {
		t.Fatalf("256-byte segments never rotated: %+v", h)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs := openTestJournal(t, path)
	defer j2.Close()
	if len(recs) != n {
		t.Fatalf("replayed %d records across rotation, want %d", len(recs), n)
	}
	for i, r := range recs {
		if want := jobID(i + 1); r.ID != want {
			t.Fatalf("record %d out of order: got %s, want %s", i, r.ID, want)
		}
	}
}

func jobID(n int) string { return fmtID(n) }

func fmtID(n int) string { return fmt.Sprintf("j%08d", n) }

// TestJournalCompaction: rotation-triggered compaction drops finished
// submit/running churn but never a done record, and the compacted
// journal still replays every result.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, _, err := OpenJournalWith(path, JournalOptions{MaxSegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{App: AppEM3D, Seed: 7}
	const n = 10
	for i := 1; i <= n; i++ {
		id := fmtID(i)
		res := JobResult{App: AppEM3D, Digest: fmt.Sprintf("d%07d", i)}
		for _, r := range []Record{
			{Type: recSubmitted, ID: id, Spec: &spec},
			{Type: recRunning, ID: id},
			{Type: recDone, ID: id, Spec: &spec, Result: &res},
		} {
			if err := j.Append(r); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
	}
	h := j.Health()
	if h.Compactions == 0 {
		t.Fatalf("no compaction ran over %d segment rotations: %+v", h.Rotations, h)
	}
	if h.CompactedDrops == 0 {
		t.Fatalf("compaction dropped nothing: %+v", h)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs := openTestJournal(t, path)
	defer j2.Close()
	seen := map[string]string{}
	for _, r := range recs {
		if r.Type == recDone && r.Result != nil {
			seen[r.ID] = r.Result.Digest
		}
	}
	for i := 1; i <= n; i++ {
		if got, want := seen[fmtID(i)], fmt.Sprintf("d%07d", i); got != want {
			t.Fatalf("done record for %s lost by compaction: digest %q, want %q", fmtID(i), got, want)
		}
	}
}

// TestJournalLegacyUpgrade: a pre-segment bare-path journal (plain
// unchecksummed JSON lines) replays, and new appends land checksummed in
// segment files without disturbing it.
func TestJournalLegacyUpgrade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	legacy := `{"type":"submitted","id":"j00000001"}` + "\n" +
		`{"type":"done","id":"j00000001"}` + "\n"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal on legacy file: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("legacy replay got %d records, want 2", len(recs))
	}
	if err := j.Append(Record{Type: recSubmitted, ID: "j00000002"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(path); err != nil || string(data) != legacy {
		t.Fatalf("legacy file was modified: %q, %v", data, err)
	}
	j2, recs := openTestJournal(t, path)
	defer j2.Close()
	if len(recs) != 3 || recs[2].ID != "j00000002" {
		t.Fatalf("combined legacy+segment replay: %+v", recs)
	}
}

// TestJournalDegradedLifecycle: persistent write failure degrades the
// journal (fail-fast DegradedError), the heal loop re-arms when the
// disk returns, owed aborts are settled durably, and a post-heal replay
// sees the abort instead of resurrecting the unacked submit.
func TestJournalDegradedLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.journal")
	fsys := hostfs.NewFault(hostfs.OS(), hostfs.FaultConfig{})
	j, _, err := OpenJournalWith(path, JournalOptions{
		FS:          fsys,
		HealBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{App: AppEM3D, Seed: 7}
	if err := j.Append(Record{Type: recSubmitted, ID: "j00000001", Spec: &spec}); err != nil {
		t.Fatal(err)
	}

	fsys.SetBroken(hostfs.BrokenEIO)
	err = j.Append(Record{Type: recSubmitted, ID: "j00000002", Spec: &spec})
	if err == nil || isDegraded(err) {
		t.Fatalf("first append against a broken disk: %v, want plain *HostError", err)
	}
	j.Degrade("j00000002") // the submit's ack never happened
	if err := j.Append(Record{Type: recSubmitted, ID: "j00000003"}); !errors.Is(err, ErrJournalDegraded) {
		t.Fatalf("degraded append err = %v, want ErrJournalDegraded", err)
	}
	if !j.Degraded() {
		t.Fatal("journal not reporting degraded")
	}

	// Let the heal loop probe against the still-broken disk a few times.
	deadline := time.Now().Add(time.Second)
	for j.Health().HealAttempts == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fsys.Heal()
	fsys.SetBroken(hostfs.Healthy)
	for j.Degraded() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if j.Degraded() {
		t.Fatal("journal never healed after the disk recovered")
	}
	if err := j.Append(Record{Type: recDone, ID: "j00000001", Spec: &spec,
		Result: &JobResult{App: AppEM3D, Digest: "abc"}}); err != nil {
		t.Fatalf("post-heal append: %v", err)
	}
	h := j.Health()
	if h.Heals != 1 || h.DegradedCount != 1 || h.PendingAborts != 0 {
		t.Fatalf("health after heal: %+v", h)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs := openTestJournal(t, path)
	defer j2.Close()
	var sawAbort bool
	for _, r := range recs {
		if r.Type == recAborted && r.ID == "j00000002" {
			sawAbort = true
		}
	}
	if !sawAbort {
		t.Fatalf("heal did not persist the owed abort: %+v", recs)
	}
}

// TestJournalClosedAppend: appends after Close fail transient — the
// caller's retry loop handles it, not a crash.
func TestJournalClosedAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, _ := openTestJournal(t, path)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	err := j.Append(Record{Type: recSubmitted, ID: "j00000001"})
	if err == nil {
		t.Fatal("Append on closed journal succeeded")
	}
	if got := Classify(err); got != ClassTransient {
		t.Errorf("closed-journal append classified %v, want transient", got)
	}
}

// TestAppendRetryBackoff: transient failures retry with exponential
// backoff and give up after the attempt budget.
func TestAppendRetryBackoff(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, _ := openTestJournal(t, path)
	j.Close() // every Append now fails transient

	var sleeps []time.Duration
	err := appendRetry(j, Record{Type: recSubmitted, ID: "j00000001"}, 3,
		func(d time.Duration) { sleeps = append(sleeps, d) })
	if err == nil {
		t.Fatal("appendRetry succeeded against a closed journal")
	}
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(sleeps), sleeps, len(want))
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Errorf("backoff %d: %v, want %v", i, sleeps[i], want[i])
		}
	}
}
