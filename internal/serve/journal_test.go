package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTestJournal(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", path, err)
	}
	return j, recs
}

// TestJournalRoundTrip: appended records replay in order on reopen.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, recs := openTestJournal(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	spec := JobSpec{App: AppEM3D, Seed: 7}
	res := JobResult{App: AppEM3D, Digest: "00deadbeef00cafe", Cycles: 123, Validated: true}
	want := []Record{
		{Type: recSubmitted, ID: "j00000001", Key: KeyString(spec), Spec: &spec},
		{Type: recRunning, ID: "j00000001"},
		{Type: recDone, ID: "j00000001", Key: KeyString(spec), Spec: &spec, Result: &res},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, got := openTestJournal(t, path)
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].ID != want[i].ID || got[i].Key != want[i].Key {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[2].Result == nil || got[2].Result.Digest != res.Digest {
		t.Errorf("done record lost the result: %+v", got[2].Result)
	}
}

// TestJournalTornTail: a partial final line — the signature of a crash
// mid-append — is dropped and truncated away; the journal then appends
// cleanly from the last good record.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, _ := openTestJournal(t, path)
	spec := JobSpec{App: AppEM3D, Seed: 7}
	for _, id := range []string{"j00000001", "j00000002"} {
		if err := j.Append(Record{Type: recSubmitted, ID: id, Spec: &spec}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate the crash: half a record, no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"done","id":"j0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs := openTestJournal(t, path)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records past a torn tail, want 2", len(recs))
	}
	if err := j2.Append(Record{Type: recDone, ID: "j00000001", Spec: &spec}); err != nil {
		t.Fatalf("Append after torn-tail recovery: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j3, recs := openTestJournal(t, path)
	defer j3.Close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after healing, want 3", len(recs))
	}
	if recs[2].Type != recDone || recs[2].ID != "j00000001" {
		t.Errorf("healed tail record wrong: %+v", recs[2])
	}
}

// TestJournalMidFileCorruption: a corrupt record that is NOT the final
// line cannot be a torn append — refusing to open beats silently
// dropping acknowledged jobs.
func TestJournalMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	content := `{"type":"submitted","id":"j00000001"}` + "\n" +
		`GARBAGE NOT JSON` + "\n" +
		`{"type":"done","id":"j00000001"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(path)
	if err == nil {
		t.Fatal("OpenJournal accepted mid-file corruption")
	}
	var host *HostError
	if !errors.As(err, &host) {
		t.Fatalf("corruption error is %T, want *HostError", err)
	}
}

// TestJournalClosedAppend: appends after Close fail transient — the
// caller's retry loop handles it, not a crash.
func TestJournalClosedAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, _ := openTestJournal(t, path)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	err := j.Append(Record{Type: recSubmitted, ID: "j00000001"})
	if err == nil {
		t.Fatal("Append on closed journal succeeded")
	}
	if got := Classify(err); got != ClassTransient {
		t.Errorf("closed-journal append classified %v, want transient", got)
	}
}

// TestAppendRetryBackoff: transient failures retry with exponential
// backoff and give up after the attempt budget.
func TestAppendRetryBackoff(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	j, _ := openTestJournal(t, path)
	j.Close() // every Append now fails transient

	var sleeps []time.Duration
	err := appendRetry(j, Record{Type: recSubmitted, ID: "j00000001"}, 3,
		func(d time.Duration) { sleeps = append(sleeps, d) })
	if err == nil {
		t.Fatal("appendRetry succeeded against a closed journal")
	}
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("slept %d times (%v), want %d", len(sleeps), sleeps, len(want))
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Errorf("backoff %d: %v, want %v", i, sleeps[i], want[i])
		}
	}
}
