package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/shell"
	"repro/internal/splitc"
)

// ckptSpec is an em3d job long enough to publish several checkpoints at
// the minimum cadence: small memory (checkpoint files stay a few
// hundred KiB) but enough epochs that a kill lands mid-job.
func ckptSpec(seed int64) JobSpec {
	return JobSpec{
		App: AppEM3D, PEs: 2, NodesPerPE: 48, Degree: 4, Iters: 48,
		Seed: seed, MemBytes: 128 << 10, CheckpointCycles: MinCheckpointCycles,
	}
}

// ckptServerConfig is the standard two-dir layout: journal and
// checkpoint files in separate directories under root.
func ckptServerConfig(t *testing.T, root string) Config {
	t.Helper()
	ckdir := filepath.Join(root, "ck")
	if err := ckpt.MkdirAll(ckdir); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	return Config{
		JournalPath:   filepath.Join(root, "j.journal"),
		CheckpointDir: ckdir,
		Pool:          PoolConfig{Workers: 1, QueueDepth: 8},
	}
}

// awaitCheckpoints polls until the job has published at least n
// checkpoints (or fails the test after a deadline).
func awaitCheckpoints(t *testing.T, j *Job, n int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.Progress.Checkpoints.Load() >= n {
			return
		}
		select {
		case <-j.Done():
			t.Fatalf("job %s finished with only %d checkpoints, wanted to kill it at %d",
				j.ID, j.Progress.Checkpoints.Load(), n)
		case <-time.After(time.Millisecond):
		}
	}
	t.Fatalf("job %s never reached %d checkpoints (at %d)", j.ID, n, j.Progress.Checkpoints.Load())
}

// ckptFiles lists the checkpoint-shaped files (.ckpt/.tmp/.bad) in dir.
func ckptFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir %s: %v", dir, err)
	}
	var out []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasSuffix(n, ".ckpt") || strings.HasSuffix(n, ".ckpt.tmp") || strings.HasSuffix(n, ".ckpt.bad") {
			out = append(out, n)
		}
	}
	return out
}

// TestResumeAfterKillBitIdentical is the tentpole's end-to-end pin: a
// checkpointed job killed mid-run resumes on the restarted server from
// a durable checkpoint — not epoch 0 — and completes with the digest an
// uninterrupted run produces. After completion its checkpoint files are
// swept.
func TestResumeAfterKillBitIdentical(t *testing.T) {
	spec := ckptSpec(9001)
	want := referenceDigest(t, spec)
	root := t.TempDir()

	s1 := newTestServer(t, ckptServerConfig(t, root))
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	awaitCheckpoints(t, j1, 2)
	s1.Kill()

	s2 := newTestServer(t, ckptServerConfig(t, root))
	defer s2.Drain(10 * time.Second)
	j2, err := s2.Job(j1.ID)
	if err != nil {
		t.Fatalf("killed job not recovered: %v", err)
	}
	awaitJob(t, j2)
	if j2.State() != StateDone {
		t.Fatalf("recovered job ended %v: %s", j2.State(), j2.Err)
	}
	if j2.Result.Digest != want {
		t.Fatalf("resumed digest %s, uninterrupted digest %s", j2.Result.Digest, want)
	}
	if !j2.Progress.Resumed.Load() {
		t.Fatalf("job replayed from scratch despite %d durable checkpoints", j1.Progress.Checkpoints.Load())
	}
	if e := j2.Progress.ResumeEpoch.Load(); e < 1 {
		t.Fatalf("resume epoch %d, want >= 1", e)
	}
	if b := j2.Progress.ResumeCycles.Load(); b <= 0 || j2.Result.Cycles <= b {
		t.Fatalf("resume banked %d cycles, final %d — total must exceed the base", b, j2.Result.Cycles)
	}

	// The statusz surface reports the resume.
	z := s2.Status()
	if z.Checkpoints == nil || len(z.Checkpoints.Resumed) != 1 || z.Checkpoints.Resumed[0].ID != j2.ID {
		t.Fatalf("statusz checkpoint block missing the resumed job: %+v", z.Checkpoints)
	}

	// Terminal + durable done record: the job's checkpoints are swept.
	if files := ckptFiles(t, filepath.Join(root, "ck")); len(files) != 0 {
		t.Fatalf("checkpoint files leaked after completion: %v", files)
	}
}

// TestResumeFallbackLadder corrupts the newest checkpoint on disk: the
// restarted server must detect it (digest mismatch), quarantine it, and
// resume from the next-older checkpoint — never trust the bad bytes.
func TestResumeFallbackLadder(t *testing.T) {
	spec := ckptSpec(9002)
	want := referenceDigest(t, spec)
	root := t.TempDir()

	s1 := newTestServer(t, ckptServerConfig(t, root))
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	awaitCheckpoints(t, j1, 2)
	s1.Kill()

	ckdir := filepath.Join(root, "ck")
	names := ckptFiles(t, ckdir)
	if len(names) < 2 {
		t.Fatalf("want >= 2 checkpoint files, have %v", names)
	}
	// Names sort by epoch (zero-padded); the last is the newest.
	newest := names[len(names)-1]
	p := filepath.Join(ckdir, newest)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	s2 := newTestServer(t, ckptServerConfig(t, root))
	defer s2.Drain(10 * time.Second)
	j2, err := s2.Job(j1.ID)
	if err != nil {
		t.Fatalf("killed job not recovered: %v", err)
	}
	awaitJob(t, j2)
	if j2.Result.Digest != want {
		t.Fatalf("digest %s after fallback, want %s", j2.Result.Digest, want)
	}
	if !j2.Progress.Resumed.Load() {
		t.Fatalf("older checkpoint not used — job replayed from scratch")
	}
	z := s2.Status()
	if z.Checkpoints == nil || z.Checkpoints.Stats.Quarantined < 1 {
		t.Fatalf("corrupt newest checkpoint was not quarantined: %+v", z.Checkpoints)
	}
	if files := ckptFiles(t, ckdir); len(files) != 0 {
		t.Fatalf("checkpoint files (or quarantine leftovers) leaked: %v", files)
	}
}

// TestResumeAllCorruptFallsBackToReplay damages every checkpoint: the
// ladder exhausts, the job replays from scratch, and the digest is
// still right — corruption costs time, never correctness.
func TestResumeAllCorruptFallsBackToReplay(t *testing.T) {
	spec := ckptSpec(9003)
	want := referenceDigest(t, spec)
	root := t.TempDir()

	s1 := newTestServer(t, ckptServerConfig(t, root))
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	awaitCheckpoints(t, j1, 2)
	s1.Kill()

	ckdir := filepath.Join(root, "ck")
	names := ckptFiles(t, ckdir)
	if len(names) < 2 {
		t.Fatalf("want >= 2 checkpoint files, have %v", names)
	}
	for _, n := range names {
		p := filepath.Join(ckdir, n)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		data[len(data)/2] ^= 0x01
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}

	s2 := newTestServer(t, ckptServerConfig(t, root))
	defer s2.Drain(10 * time.Second)
	j2, err := s2.Job(j1.ID)
	if err != nil {
		t.Fatalf("killed job not recovered: %v", err)
	}
	awaitJob(t, j2)
	if j2.Result.Digest != want {
		t.Fatalf("digest %s after full replay, want %s", j2.Result.Digest, want)
	}
	if j2.Progress.Resumed.Load() {
		t.Fatalf("job claims a resume though every checkpoint was corrupt")
	}
	z := s2.Status()
	if z.Checkpoints == nil || z.Checkpoints.Stats.Quarantined < int64(len(names)) {
		t.Fatalf("quarantined %d, want >= %d", z.Checkpoints.Stats.Quarantined, len(names))
	}
	if files := ckptFiles(t, ckdir); len(files) != 0 {
		t.Fatalf("checkpoint files leaked: %v", files)
	}
}

// TestBindFailureUnpublishesCheckpoint pins the write-then-bind
// protocol directly: when the journal append between a checkpoint write
// and its record fails (here: journal closed, exactly what a cancel
// racing a drain produces), the just-published file is removed — no
// half-published checkpoint survives without a journal record vouching
// for it.
func TestBindFailureUnpublishesCheckpoint(t *testing.T) {
	root := t.TempDir()
	j, _, err := OpenJournal(filepath.Join(root, "j.journal"))
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ckdir := filepath.Join(root, "ck")
	if err := ckpt.MkdirAll(ckdir); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	store := ckpt.NewStore(nil, ckdir, 3, t.Logf)

	c := &ckptRun{store: store, journal: j, id: "j00000042", tenant: "default",
		interval: 1, logf: t.Logf}
	var prog Progress
	sink := c.sink(0, &prog)
	sink(&splitc.MachineSnapshot{
		Epoch: 1,
		Mem:   [][]byte{make([]byte, 64)},
		Regs:  []shell.RegSnapshot{{}},
		Heap:  []int64{0},
	}, 100)

	if got := prog.CheckpointFails.Load(); got != 1 {
		t.Fatalf("CheckpointFails = %d, want 1", got)
	}
	if got := prog.Checkpoints.Load(); got != 0 {
		t.Fatalf("Checkpoints = %d, want 0", got)
	}
	if files := ckptFiles(t, ckdir); len(files) != 0 {
		t.Fatalf("unbound checkpoint stranded on disk: %v", files)
	}
}

// TestResumeAccountingNotUndercounted pins the satellite accounting
// invariants: a resumed job's Cycles include the banked base (the
// resume's fresh setup rendezvous makes the total drift a hair from an
// uninterrupted run's, but dropping the base would cut it by the whole
// resume fraction), the tenant's cycle ledger is charged that full
// amount, and the cache entry carries the full cost — a resume can
// never make work look cheaper than it was.
func TestResumeAccountingNotUndercounted(t *testing.T) {
	spec := ckptSpec(9004)

	// Uninterrupted run through a checkpointing server: the recoverable
	// runner's cycle account, including epoch-boundary costs.
	rootRef := t.TempDir()
	sr := newTestServer(t, ckptServerConfig(t, rootRef))
	jr, err := sr.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	awaitJob(t, jr)
	if jr.State() != StateDone {
		t.Fatalf("reference job ended %v: %s", jr.State(), jr.Err)
	}
	refCycles := jr.Result.Cycles
	if err := sr.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Kill/resume run.
	root := t.TempDir()
	s1 := newTestServer(t, ckptServerConfig(t, root))
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	awaitCheckpoints(t, j1, 2)
	s1.Kill()

	s2 := newTestServer(t, ckptServerConfig(t, root))
	defer s2.Drain(10 * time.Second)
	j2, err := s2.Job(j1.ID)
	if err != nil {
		t.Fatalf("killed job not recovered: %v", err)
	}
	awaitJob(t, j2)
	if j2.State() != StateDone {
		t.Fatalf("resumed job ended %v: %s", j2.State(), j2.Err)
	}
	if !j2.Progress.Resumed.Load() {
		t.Fatalf("job did not resume; accounting comparison is vacuous")
	}
	base := j2.Progress.ResumeCycles.Load()
	if base <= 0 || j2.Result.Cycles <= base {
		t.Fatalf("resumed job accounts %d cycles over a %d-cycle base — the tail went missing",
			j2.Result.Cycles, base)
	}
	// Dropping the base would cut the total by the whole resume fraction
	// (>= one checkpoint interval, here ~40%+ of the run); timing drift
	// from the resume's setup rendezvous is orders smaller.
	if j2.Result.Cycles < refCycles*95/100 {
		t.Fatalf("resumed job accounts %d cycles, uninterrupted run %d — the banked base was dropped",
			j2.Result.Cycles, refCycles)
	}

	// Tenant ledger on the resumed server: charged the full logical
	// cycles, not just the post-resume tail.
	var charged int64
	for _, ts := range s2.pool.TenantSnapshots() {
		if ts.Tenant == DefaultTenant {
			charged = ts.CyclesUsed
		}
	}
	if charged < j2.Result.Cycles {
		t.Fatalf("tenant charged %d cycles for a %d-cycle job — resume undercounted the charge",
			charged, j2.Result.Cycles)
	}

	// Cache entry cost: evicting by cost must see the full cycles. The
	// cache exposes cost indirectly; pin it via the cached result.
	res, ok := s2.cache.Get(j2.Key, DefaultTenant)
	if !ok {
		t.Fatalf("resumed result not cached")
	}
	if res.Cycles != j2.Result.Cycles {
		t.Fatalf("cached result carries %d cycles, want %d", res.Cycles, j2.Result.Cycles)
	}
}

// TestCheckpointCadenceExcludedFromKey: cadence tunes durability, not
// content — two specs differing only in checkpoint_cycles are the same
// computation and must share a cache line.
func TestCheckpointCadenceExcludedFromKey(t *testing.T) {
	a := ckptSpec(9005)
	b := a
	b.CheckpointCycles = 0
	c := a
	c.CheckpointCycles = 10 * MinCheckpointCycles
	if Key(a) != Key(b) || Key(a) != Key(c) {
		t.Fatalf("checkpoint_cycles leaked into the canonical hash: %016x %016x %016x",
			Key(a), Key(b), Key(c))
	}
}
