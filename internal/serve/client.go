package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/fault"
)

// ErrClientGaveUp reports that the client exhausted its transient-retry
// budget — every attempt was refused (shed, degraded, draining) or
// failed in transport. The last underlying error is wrapped alongside.
var ErrClientGaveUp = errors.New("serve: client retries exhausted")

// ErrDigestMismatch reports that a finished job's digest differs from
// the expected one — a determinism violation, the one result this
// client exists to catch.
var ErrDigestMismatch = errors.New("serve: digest mismatch")

// Client is the retrying HTTP client for the simulation service. It
// submits specs, follows the NDJSON progress stream, and absorbs the
// service's transient refusals — 429 sheds, 503 brownouts, dropped
// connections — with deterministic jittered exponential backoff that
// honors Retry-After. The jitter draws from the same seeded splitmix64
// core as every other randomized component, so a client run replays
// its exact retry schedule from JitterSeed.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8023".
	BaseURL string
	// Tenant, when set, rides every submit as the X-T3D-Tenant header
	// (a tenant already named in the spec body wins on the server).
	Tenant string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// Attempts bounds transient retries per operation (default 10).
	Attempts int
	// Backoff is the initial retry delay (default 250ms), doubling per
	// attempt to BackoffMax (default 10s), jittered into [d/2, d).
	Backoff    time.Duration
	BackoffMax time.Duration
	// JitterSeed seeds the deterministic jitter stream.
	JitterSeed uint64
	// OnProgress, if non-nil, receives every status snapshot the watch
	// stream emits (the CLI renders these as progress lines).
	OnProgress func(JobStatus)
	// Logf, if non-nil, receives one line per retry decision.
	Logf func(format string, args ...any)

	rng   *fault.Rand
	sleep func(time.Duration) // test seam
}

// NewClient returns a client for the service at baseURL with defaults.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) init() {
	if c.HTTP == nil {
		c.HTTP = http.DefaultClient
	}
	if c.Attempts <= 0 {
		c.Attempts = 10
	}
	if c.Backoff <= 0 {
		c.Backoff = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.rng == nil {
		c.rng = &fault.Rand{State: c.JitterSeed}
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
}

// Terminal reports whether the status is final.
func (st JobStatus) Terminal() bool {
	return st.State == StateDone.String() || st.State == StateFailed.String()
}

// retryDelay computes the attempt'th backoff: exponential, capped,
// jittered into [d/2, d), then raised to the server's Retry-After hint
// when that is longer — the hint is a floor, not a suggestion.
func (c *Client) retryDelay(attempt int, retryAfter time.Duration) time.Duration {
	d := c.Backoff << attempt
	if d > c.BackoffMax || d <= 0 {
		d = c.BackoffMax
	}
	d = d/2 + time.Duration(c.rng.Float()*float64(d/2))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// transientStatus reports whether an HTTP status is a retriable refusal.
func transientStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable ||
		code == http.StatusInternalServerError
}

func retryAfterOf(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

func apiError(resp *http.Response, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d", resp.StatusCode)
}

// Submit posts one spec, retrying transient refusals. The returned
// status may already be terminal (cache hit on the server).
func (c *Client) Submit(spec JobSpec) (JobStatus, error) {
	c.init()
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	var last error
	for attempt := 0; attempt < c.Attempts; attempt++ {
		req, err := http.NewRequest(http.MethodPost, c.BaseURL+"/jobs", bytes.NewReader(body))
		if err != nil {
			return JobStatus{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		if c.Tenant != "" {
			req.Header.Set("X-T3D-Tenant", c.Tenant)
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			last = err
			c.backoffFor(attempt, 0, "submit", err)
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			last = rerr
			c.backoffFor(attempt, 0, "submit", rerr)
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
			var st JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return JobStatus{}, fmt.Errorf("serve: client: bad submit response: %w", err)
			}
			return st, nil
		case transientStatus(resp.StatusCode):
			last = apiError(resp, data)
			c.backoffFor(attempt, retryAfterOf(resp), "submit", last)
		default:
			return JobStatus{}, apiError(resp, data)
		}
	}
	return JobStatus{}, fmt.Errorf("%w after %d attempts: %v", ErrClientGaveUp, c.Attempts, last)
}

func (c *Client) backoffFor(attempt int, retryAfter time.Duration, op string, cause error) {
	d := c.retryDelay(attempt, retryAfter)
	c.Logf("t3dclient: %s attempt %d: %v — retrying in %s", op, attempt+1, cause, d)
	c.sleep(d)
}

// Status fetches one status snapshot.
func (c *Client) Status(id string) (JobStatus, error) {
	c.init()
	var last error
	for attempt := 0; attempt < c.Attempts; attempt++ {
		resp, err := c.HTTP.Get(c.BaseURL + "/jobs/" + id)
		if err != nil {
			last = err
			c.backoffFor(attempt, 0, "status", err)
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			last = rerr
			c.backoffFor(attempt, 0, "status", rerr)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			var st JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return JobStatus{}, fmt.Errorf("serve: client: bad status response: %w", err)
			}
			return st, nil
		}
		if !transientStatus(resp.StatusCode) {
			return JobStatus{}, apiError(resp, data)
		}
		last = apiError(resp, data)
		c.backoffFor(attempt, retryAfterOf(resp), "status", last)
	}
	return JobStatus{}, fmt.Errorf("%w after %d attempts: %v", ErrClientGaveUp, c.Attempts, last)
}

// Watch follows the job's NDJSON progress stream until it is terminal,
// reconnecting (with backoff) when the stream drops mid-run. Every
// decoded snapshot goes to OnProgress.
func (c *Client) Watch(id string) (JobStatus, error) {
	c.init()
	var last error
	for attempt := 0; attempt < c.Attempts; attempt++ {
		st, progressed, err := c.watchOnce(id)
		if err == nil {
			return st, nil
		}
		if progressed {
			// The stream was live before it dropped; a reconnect is a
			// fresh outage, not the same one compounding.
			attempt = 0
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return JobStatus{}, perm.err
		}
		last = err
		c.backoffFor(attempt, 0, "watch", err)
	}
	return JobStatus{}, fmt.Errorf("%w after %d attempts: %v", ErrClientGaveUp, c.Attempts, last)
}

// permanentError marks a watch failure that reconnecting cannot fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

// watchOnce is one stream attempt. progressed reports whether at least
// one snapshot was decoded before the failure.
func (c *Client) watchOnce(id string) (st JobStatus, progressed bool, err error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/jobs/" + id + "?watch=1")
	if err != nil {
		return JobStatus{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		aerr := apiError(resp, data)
		if transientStatus(resp.StatusCode) {
			return JobStatus{}, false, aerr
		}
		return JobStatus{}, false, &permanentError{err: aerr}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := json.Unmarshal(line, &st); err != nil {
			return JobStatus{}, progressed, fmt.Errorf("serve: client: bad watch line: %w", err)
		}
		progressed = true
		if c.OnProgress != nil {
			c.OnProgress(st)
		}
		if st.Terminal() {
			return st, true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return JobStatus{}, progressed, err
	}
	return JobStatus{}, progressed, fmt.Errorf("serve: client: watch stream ended before job %s was terminal", id)
}

// Run is the full client flow: submit (with retries), then follow the
// job to completion. expectDigest, when non-empty, is verified against
// the final result; a mismatch is ErrDigestMismatch — the bit-identity
// contract, enforced from the outside.
func (c *Client) Run(spec JobSpec, expectDigest string) (JobStatus, error) {
	st, err := c.Submit(spec)
	if err != nil {
		return st, err
	}
	if st.Terminal() {
		// Cache hit: done before the watch could start. The watch path
		// reports terminal snapshots itself.
		if c.OnProgress != nil {
			c.OnProgress(st)
		}
	} else if st, err = c.Watch(st.ID); err != nil {
		return st, err
	}
	if st.State == StateDone.String() && expectDigest != "" && st.Result != nil && st.Result.Digest != expectDigest {
		return st, fmt.Errorf("%w: got %s, want %s", ErrDigestMismatch, st.Result.Digest, expectDigest)
	}
	return st, nil
}
