package sim

import (
	"errors"
	"testing"
)

// TestCheckDeadline pins the arming semantics: no deadline means no
// panic, an unexpired deadline means no panic, an expired one panics
// with a *DeadlineError that unwraps to ErrDeadline.
func TestCheckDeadline(t *testing.T) {
	e := NewEngine()
	e.Spawn("worker", func(p *Proc) {
		p.CheckDeadline("never armed") // must not panic

		p.SetDeadline(p.Now() + 100)
		p.Wait(50)
		p.CheckDeadline("halfway") // still 50 cycles of budget

		p.Wait(50)
		defer func() {
			r := recover()
			de, ok := r.(*DeadlineError)
			if !ok {
				t.Fatalf("recovered %v (%T), want *DeadlineError", r, r)
			}
			if !errors.Is(de, ErrDeadline) {
				t.Errorf("DeadlineError does not unwrap to ErrDeadline")
			}
			if de.Op != "expired" || de.Proc != "worker" {
				t.Errorf("DeadlineError = %+v, want op=expired proc=worker", de)
			}
			if de.Now < de.Deadline {
				t.Errorf("expired at t=%d before deadline t=%d", de.Now, de.Deadline)
			}
		}()
		p.CheckDeadline("expired")
		t.Error("CheckDeadline did not panic at the deadline")
	})
	e.Run()
}

// TestWaitSignalDeadline covers both races: the signal winning (normal
// return) and the deadline winning (DeadlineError surfacing from RunErr
// as a *ProcFailure).
func TestWaitSignalDeadline(t *testing.T) {
	e := NewEngine()
	s := NewSignal("data")
	var got bool
	e.Spawn("waiter", func(p *Proc) {
		p.SetDeadline(p.Now() + 1000)
		p.WaitSignalDeadline(s, "fast wait")
		got = true
		p.SetDeadline(0)
	})
	e.After(10, func() { s.Fire(e) })
	if _, err := e.RunErr(); err != nil {
		t.Fatalf("signal-first wait failed: %v", err)
	}
	if !got {
		t.Fatal("waiter never resumed after the signal")
	}

	e2 := NewEngine()
	slow := NewSignal("slow")
	e2.Spawn("late", func(p *Proc) {
		p.SetDeadline(p.Now() + 20)
		p.WaitSignalDeadline(slow, "slow wait")
		t.Error("wait returned even though the signal never fired in time")
	})
	e2.After(500, func() { slow.Fire(e2) })
	_, err := e2.RunErr()
	var pf *ProcFailure
	if !errors.As(err, &pf) {
		t.Fatalf("RunErr = %v (%T), want *ProcFailure", err, err)
	}
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("failure %v does not wrap ErrDeadline", err)
	}
	var de *DeadlineError
	if !errors.As(err, &de) || de.Op != "slow wait" {
		t.Errorf("failure %v does not carry the blocking op", err)
	}
}

// TestAwaitDeadline: the condition coming true through repeated fires
// completes; a condition that never holds expires with ErrDeadline.
func TestAwaitDeadline(t *testing.T) {
	e := NewEngine()
	s := NewSignal("tick")
	n := 0
	e.Spawn("counter", func(p *Proc) {
		p.SetDeadline(p.Now() + 1000)
		AwaitDeadline(p, s, "count to 3", func() bool { return n >= 3 })
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.At(Time(i*10), func() { n++; s.Fire(e) })
	}
	if _, err := e.RunErr(); err != nil {
		t.Fatalf("await failed: %v", err)
	}

	e2 := NewEngine()
	s2 := NewSignal("tick2")
	e2.Spawn("stuck", func(p *Proc) {
		p.SetDeadline(p.Now() + 50)
		AwaitDeadline(p, s2, "never", func() bool { return false })
	})
	e2.After(10, func() { s2.Fire(e2) })
	e2.After(20, func() { s2.Fire(e2) })
	if _, err := e2.RunErr(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("RunErr = %v, want ErrDeadline", err)
	}
}
