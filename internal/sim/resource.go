package sim

// Resource models a device that serves one request at a time (a DRAM bank,
// a network link, a DMA engine). It tracks only the time at which it next
// becomes free; callers compute their own completion times from the
// returned service-start time.
type Resource struct {
	freeAt Time
}

// Acquire reserves the resource for occupancy cycles starting no earlier
// than start, and returns the time service actually begins (start, or
// later if the resource is busy).
func (r *Resource) Acquire(start, occupancy Time) Time {
	if occupancy < 0 {
		panic("sim: negative occupancy")
	}
	if start > r.freeAt {
		r.freeAt = start
	}
	s := r.freeAt
	r.freeAt = s + occupancy
	return s
}

// FreeAt reports when the resource next becomes free.
func (r *Resource) FreeAt() Time { return r.freeAt }
