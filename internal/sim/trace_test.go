package sim

import "testing"

func TestTraceDisabledByDefault(t *testing.T) {
	e := NewEngine()
	if e.Tracing() {
		t.Error("tracing on by default")
	}
	e.Trace("x", "should be dropped") // must not panic
}

func TestTraceBufferRecords(t *testing.T) {
	e := NewEngine()
	var buf TraceBuffer
	e.SetTracer(buf.Add)
	if !e.Tracing() {
		t.Error("Tracing() false after SetTracer")
	}
	e.Spawn("p", func(p *Proc) {
		p.Wait(5)
		e.Trace("cat.a", "event %d", 1)
		p.Wait(5)
		e.Trace("cat.b", "event %d", 2)
	})
	e.Run()
	if len(buf.Events) != 2 {
		t.Fatalf("%d events", len(buf.Events))
	}
	if buf.Events[0].At != 5 || buf.Events[0].Category != "cat.a" || buf.Events[0].Msg != "event 1" {
		t.Errorf("event 0 = %+v", buf.Events[0])
	}
	if got := buf.ByCategory("cat.b"); len(got) != 1 || got[0].At != 10 {
		t.Errorf("ByCategory = %+v", got)
	}
}

func TestTraceBufferLimit(t *testing.T) {
	e := NewEngine()
	buf := TraceBuffer{Limit: 2}
	e.SetTracer(buf.Add)
	for i := 0; i < 5; i++ {
		e.Trace("x", "e%d", i)
	}
	if len(buf.Events) != 2 {
		t.Errorf("limit not enforced: %d events", len(buf.Events))
	}
}

func TestTracerRemovable(t *testing.T) {
	e := NewEngine()
	var buf TraceBuffer
	e.SetTracer(buf.Add)
	e.Trace("x", "one")
	e.SetTracer(nil)
	e.Trace("x", "two")
	if len(buf.Events) != 1 {
		t.Errorf("%d events after removal", len(buf.Events))
	}
}
