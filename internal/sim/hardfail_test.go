package sim

import (
	"strings"
	"testing"
)

// The watchdog's configuration contract: a live probe with a
// non-positive interval or stall count is a programming error the
// engine must reject loudly, not a silently disabled watchdog.
func TestWatchdogRejectsNonPositiveConfig(t *testing.T) {
	probe := func() int64 { return 0 }
	cases := []struct {
		name     string
		interval Time
		stalls   int
	}{
		{"zero interval", 0, 3},
		{"negative interval", -10, 3},
		{"zero stalls", 100, 0},
		{"negative stalls", 100, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("SetWatchdog(%d, %d, probe) did not panic", tc.interval, tc.stalls)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "watchdog") {
					t.Errorf("panic %v does not mention the watchdog", r)
				}
			}()
			NewEngine().SetWatchdog(tc.interval, tc.stalls, probe)
		})
	}
}

func TestWatchdogNilProbeDisables(t *testing.T) {
	// A nil probe disables the watchdog regardless of the other
	// arguments — the documented way to switch it off.
	e := NewEngine()
	e.SetWatchdog(0, 0, nil)
	e.Spawn("worker", func(p *Proc) { p.Wait(10) })
	if end, err := e.RunErr(); err != nil || end != 10 {
		t.Fatalf("RunErr = (%d, %v), want (10, nil)", end, err)
	}
}

// A hard-faulted node stops participating in its collectives. The procs
// it leaves behind, parked on a rendezvous that can no longer complete,
// must surface as a structured deadlock report naming the survivors —
// not as a hang.
func TestDeadlockReportAfterProcDeath(t *testing.T) {
	e := NewEngine()
	rendezvous := NewSignal("barrier.epoch1")
	e.Spawn("pe0", func(p *Proc) { p.WaitSignal(rendezvous) })
	e.Spawn("pe1", func(p *Proc) { p.WaitSignal(rendezvous) })
	// pe2 is the failing node: it "dies" at t=50 without signalling.
	e.Spawn("pe2", func(p *Proc) { p.Wait(50) })
	_, err := e.RunErr()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v (%T), want *DeadlockError", err, err)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("Blocked = %v, want the two surviving procs", de.Blocked)
	}
	for i, want := range []string{"pe0", "pe1"} {
		if de.Blocked[i].Name != want {
			t.Errorf("Blocked[%d].Name = %q, want %q", i, de.Blocked[i].Name, want)
		}
		if de.Blocked[i].Waiting != "barrier.epoch1" {
			t.Errorf("Blocked[%d] parked on %q, want barrier.epoch1", i, de.Blocked[i].Waiting)
		}
	}
	// The dead proc finished cleanly, so it must NOT appear blocked.
	if strings.Contains(err.Error(), "pe2") {
		t.Errorf("diagnostic %q names the completed proc pe2", err.Error())
	}
}

// An error-valued proc panic — the shape every modeled hardware failure
// uses — must come back from RunErr as a *ProcFailure that unwraps to
// the original error, so callers can errors.Is across layers.
func TestRunErrWrapsErrorPanics(t *testing.T) {
	e := NewEngine()
	boom := &testHardError{}
	e.Spawn("victim", func(p *Proc) {
		p.Wait(7)
		panic(boom)
	})
	e.Spawn("bystander", func(p *Proc) { p.Wait(3) })
	_, err := e.RunErr()
	pf, ok := err.(*ProcFailure)
	if !ok {
		t.Fatalf("err = %v (%T), want *ProcFailure", err, err)
	}
	if pf.Proc != "victim" {
		t.Errorf("ProcFailure.Proc = %q, want victim", pf.Proc)
	}
	if pf.Unwrap() != boom {
		t.Errorf("Unwrap() = %v, want the original error", pf.Unwrap())
	}
}

type testHardError struct{}

func (*testHardError) Error() string { return "modeled hardware failure" }
