package sim

import "fmt"

// Tracer receives simulation trace events: the simulated time, a short
// category ("shell.read", "net.send", "barrier", ...), and a formatted
// message. Tracing is off (nil) by default and costs one nil check per
// potential event when disabled.
type Tracer func(t Time, category, msg string)

// SetTracer installs (or, with nil, removes) the engine's tracer.
func (e *Engine) SetTracer(tr Tracer) { e.tracer = tr }

// Tracing reports whether a tracer is installed, so callers can avoid
// building expensive messages that would be dropped.
func (e *Engine) Tracing() bool { return e.tracer != nil }

// Trace emits one event if tracing is enabled.
func (e *Engine) Trace(category, format string, args ...any) {
	if e.tracer == nil {
		return
	}
	e.tracer(e.now, category, fmt.Sprintf(format, args...))
}

// TraceBuffer is a convenience Tracer that records events in memory.
type TraceBuffer struct {
	Events []TraceEvent
	// Limit caps stored events; 0 means unlimited.
	Limit int
}

// TraceEvent is one recorded trace entry.
type TraceEvent struct {
	At       Time
	Category string
	Msg      string
}

// Add implements Tracer.
func (b *TraceBuffer) Add(t Time, category, msg string) {
	if b.Limit > 0 && len(b.Events) >= b.Limit {
		return
	}
	b.Events = append(b.Events, TraceEvent{t, category, msg})
}

// ByCategory returns the recorded events matching category.
func (b *TraceBuffer) ByCategory(category string) []TraceEvent {
	var out []TraceEvent
	for _, e := range b.Events {
		if e.Category == category {
			out = append(out, e)
		}
	}
	return out
}
