// Package sim provides a deterministic discrete-event simulation kernel.
//
// Time is measured in integer cycles. An Engine owns an event queue and a
// set of Procs (simulated threads of control). Procs are goroutines that
// run one at a time under strict handoff with the engine, so simulations
// are fully deterministic: events at equal times fire in scheduling order.
//
// A Proc advances its own time with Wait and WaitUntil, blocks on a Signal
// with WaitSignal, and may spawn further procs. Plain callbacks can be
// scheduled with Engine.At; they run inline in the engine loop and must not
// block.
//
// The kernel is intentionally small: everything machine-specific (caches,
// DRAM banks, networks, the T3D shell) is built on top of it in sibling
// packages.
package sim
