package sim

import (
	"errors"
	"fmt"
	"runtime"
)

type procState int

const (
	procReady   procState = iota // has a scheduled wakeup event
	procRunning                  // currently executing
	procBlocked                  // parked on a Signal, no scheduled event
	procDone                     // body returned
)

// Proc is a simulated thread of control. Procs run one at a time under
// strict handoff with the engine; all methods must be called from the
// proc's own body.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	state  procState

	// epoch distinguishes wakeup generations: any event scheduled for an
	// earlier park is stale and skipped by the engine.
	epoch       uint64
	sigFired    bool
	daemon      bool
	interrupted bool
	killed      bool // set by Engine.Shutdown; the next resume unwinds via Goexit

	// Deadlock diagnostics: what the proc is blocked on and since when
	// (meaningful only while state == procBlocked).
	waitLabel    string
	blockedSince Time

	// deadline is the absolute cycle by which deadline-aware blocking
	// operations must complete (0 = none armed). Expiry panics with a
	// *DeadlineError (an error value), which sim.Engine.RunErr converts
	// into a *ProcFailure and higher layers (splitc.Ctx.WithDeadline)
	// recover into an ordinary error return.
	deadline Time
}

// ErrDeadline reports that a deadline-aware operation ran out of
// simulated time. It is a per-operation, transient condition — unlike
// net.ErrPartitioned, retrying with a larger budget may succeed — so
// callers should degrade (drop, defer, serve stale) rather than treat
// the peer as gone.
var ErrDeadline = errors.New("sim: deadline exceeded")

// DeadlineError is the concrete expiry failure: which proc, what it was
// doing, and by how much the deadline was missed. It unwraps to
// ErrDeadline so errors.Is works across layers.
type DeadlineError struct {
	Proc     string // name of the proc whose deadline expired
	Op       string // the blocking operation that was cut short
	Deadline Time   // the armed absolute deadline
	Now      Time   // simulated time at expiry
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("sim: proc %q deadline exceeded during %s (deadline t=%d, now t=%d)",
		e.Proc, e.Op, e.Deadline, e.Now)
}

func (e *DeadlineError) Unwrap() error { return ErrDeadline }

// SetDeadline arms (or, with 0, clears) the proc's absolute deadline.
// Deadline-aware waits — WaitSignalDeadline, AwaitDeadline, and the
// explicit CheckDeadline calls in polling loops — panic with a
// *DeadlineError once the deadline passes. Pure time waits (Wait,
// WaitUntil) are unaffected: local work always completes.
func (p *Proc) SetDeadline(t Time) { p.deadline = t }

// Deadline returns the armed absolute deadline (0 = none).
func (p *Proc) Deadline() Time { return p.deadline }

// CheckDeadline panics with a *DeadlineError if a deadline is armed and
// has passed. Polling loops that advance time between iterations (write
// completion, credit waits) call it once per iteration.
//
//t3d:hotpath
func (p *Proc) CheckDeadline(op string) {
	if p.deadline != 0 && p.eng.now >= p.deadline {
		//lint:allow hotalloc deadline-expiry failure path; the in-budget check is branch-only
		panic(&DeadlineError{Proc: p.name, Op: op, Deadline: p.deadline, Now: p.eng.now})
	}
}

// WaitSignalDeadline blocks until s fires, like WaitSignal, but if the
// proc's deadline passes first it panics with a *DeadlineError. With no
// deadline armed it is exactly WaitSignal. The abandoned wakeup is
// harmless: a signal fire with no waiters is a no-op.
//
//t3d:hotpath
func (p *Proc) WaitSignalDeadline(s *Signal, op string) {
	if p.deadline == 0 {
		p.WaitSignal(s)
		return
	}
	for {
		p.CheckDeadline(op)
		if p.WaitSignalTimeout(s, p.deadline-p.eng.now) {
			return
		}
	}
}

// AwaitDeadline blocks p until cond() holds, re-testing each time s
// fires, and panics with a *DeadlineError if the proc's deadline passes
// first. It is the deadline-aware Await.
func AwaitDeadline(p *Proc, s *Signal, op string, cond func() bool) {
	for !cond() {
		p.WaitSignalDeadline(s, op)
	}
}

// Name returns the proc's name (used in deadlock reports).
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// park hands control back to the engine and blocks until resumed.
func (p *Proc) park(st procState) {
	p.state = st
	p.eng.yield <- yieldMsg{kind: yieldBlocked, proc: p}
	<-p.resume
	if p.killed {
		// Engine.Shutdown is reaping this proc: terminate the goroutine,
		// running deferred cleanups on the way out. Goexit (not a panic)
		// so no recover in user code can intercept the teardown.
		runtime.Goexit()
	}
}

// Wait advances the proc's time by d cycles.
//
//t3d:hotpath
func (p *Proc) Wait(d Time) {
	if d < 0 {
		//lint:allow hotalloc negative-duration misuse panic; a valid wait never formats
		panic(fmt.Sprintf("sim: Wait(%d) negative", d))
	}
	if d == 0 {
		return
	}
	p.epoch++
	p.eng.scheduleEpoch(p, p.eng.now+d, p.epoch)
	p.park(procReady)
}

// WaitUntil blocks the proc until absolute time t. If t is not after the
// current time it returns immediately.
func (p *Proc) WaitUntil(t Time) {
	if d := t - p.eng.now; d > 0 {
		p.Wait(d)
	}
}

// Yield reschedules the proc at the current time, letting other
// equal-time events run first.
func (p *Proc) Yield() {
	p.epoch++
	p.eng.scheduleEpoch(p, p.eng.now, p.epoch)
	p.park(procReady)
}

// WaitSignal blocks until s fires.
//
//t3d:hotpath
func (p *Proc) WaitSignal(s *Signal) {
	p.checkInterrupt()
	p.epoch++
	p.waitLabel, p.blockedSince = s.name, p.eng.now
	//lint:allow hotalloc one waiter record per block; the per-signal slice is reused across fires, so the append is an amortized slot store
	s.waiters = append(s.waiters, waiter{p, p.epoch})
	p.park(procBlocked)
	p.checkInterrupt()
}

// WaitSignalTimeout blocks until s fires or d cycles elapse. It reports
// whether the signal fired (as opposed to the timeout expiring).
//
//t3d:hotpath
func (p *Proc) WaitSignalTimeout(s *Signal, d Time) bool {
	p.checkInterrupt()
	if d <= 0 {
		return false
	}
	p.epoch++
	p.sigFired = false
	p.waitLabel, p.blockedSince = s.name, p.eng.now
	//lint:allow hotalloc one waiter record per block; the per-signal slice is reused across fires, so the append is an amortized slot store
	s.waiters = append(s.waiters, waiter{p, p.epoch})
	p.eng.scheduleEpoch(p, p.eng.now+d, p.epoch)
	p.park(procBlocked)
	p.checkInterrupt()
	return p.sigFired
}

// InterruptSignal is the panic value a signal wait raises after the proc
// has been interrupted with Interrupt. It deliberately does not implement
// error: an interrupt that escapes its recovery driver is a program bug
// and should crash the run loudly, not surface as a recoverable failure.
type InterruptSignal struct {
	Proc string // name of the interrupted proc
}

//t3d:hotpath
func (p *Proc) checkInterrupt() {
	if p.interrupted {
		panic(InterruptSignal{Proc: p.name})
	}
}

// Interrupt marks the proc for asynchronous abort: if it is blocked on a
// signal it is woken immediately, and its next (or current) WaitSignal /
// WaitSignalTimeout panics with InterruptSignal{}. Pure time waits are
// unaffected, so hardware-drain loops still quiesce normally. Interrupt
// is safe to call from event context; it is a no-op on a done proc. The
// rollback machinery in higher layers recovers the panic — procs that are
// not part of a recovery domain should never be interrupted.
func (p *Proc) Interrupt() {
	if p.state == procDone {
		return
	}
	p.interrupted = true
	if p.state == procBlocked {
		p.sigFired = false
		p.state = procReady
		p.eng.scheduleEpoch(p, p.eng.now, p.epoch)
	}
}

// ClearInterrupt re-arms the proc after an interrupt has been recovered.
func (p *Proc) ClearInterrupt() { p.interrupted = false }

// Interrupted reports whether an interrupt is pending on the proc.
func (p *Proc) Interrupted() bool { return p.interrupted }

// Signal is a broadcast wakeup point: any number of procs may block on it
// and are all released when it fires. Signals carry no state; a fire with
// no waiters is a no-op (use a separate flag for level-sensitive waits).
type Signal struct {
	name    string
	waiters []waiter
}

type waiter struct {
	proc  *Proc
	epoch uint64
}

// NewSignal returns a named signal.
//
//t3d:hotpath
//lint:allow hotalloc one signal object per outstanding transaction; header pooling is the ROADMAP item-1 follow-up
func NewSignal(name string) *Signal { return &Signal{name: name} }

// Fire wakes all procs currently blocked on the signal. The wakeups are
// scheduled at the current time and run in blocking order.
func (s *Signal) Fire(e *Engine) {
	for _, w := range s.waiters {
		if w.proc.epoch != w.epoch || w.proc.state != procBlocked {
			continue // stale: proc already resumed some other way
		}
		w.proc.sigFired = true
		w.proc.state = procReady
		e.scheduleEpoch(w.proc, e.now, w.epoch)
	}
	s.waiters = s.waiters[:0]
}

// Await blocks p until cond() is true, re-testing each time s fires.
// It tests once before blocking, so a condition that already holds
// returns immediately.
func Await(p *Proc, s *Signal, cond func() bool) {
	for !cond() {
		p.WaitSignal(s)
	}
}
