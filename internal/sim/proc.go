package sim

import "fmt"

type procState int

const (
	procReady   procState = iota // has a scheduled wakeup event
	procRunning                  // currently executing
	procBlocked                  // parked on a Signal, no scheduled event
	procDone                     // body returned
)

// Proc is a simulated thread of control. Procs run one at a time under
// strict handoff with the engine; all methods must be called from the
// proc's own body.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	state  procState

	// epoch distinguishes wakeup generations: any event scheduled for an
	// earlier park is stale and skipped by the engine.
	epoch       uint64
	sigFired    bool
	daemon      bool
	interrupted bool

	// Deadlock diagnostics: what the proc is blocked on and since when
	// (meaningful only while state == procBlocked).
	waitLabel    string
	blockedSince Time
}

// Name returns the proc's name (used in deadlock reports).
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// park hands control back to the engine and blocks until resumed.
func (p *Proc) park(st procState) {
	p.state = st
	p.eng.yield <- yieldMsg{kind: yieldBlocked, proc: p}
	<-p.resume
}

// Wait advances the proc's time by d cycles.
func (p *Proc) Wait(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Wait(%d) negative", d))
	}
	if d == 0 {
		return
	}
	p.epoch++
	p.eng.scheduleEpoch(p, p.eng.now+d, p.epoch)
	p.park(procReady)
}

// WaitUntil blocks the proc until absolute time t. If t is not after the
// current time it returns immediately.
func (p *Proc) WaitUntil(t Time) {
	if d := t - p.eng.now; d > 0 {
		p.Wait(d)
	}
}

// Yield reschedules the proc at the current time, letting other
// equal-time events run first.
func (p *Proc) Yield() {
	p.epoch++
	p.eng.scheduleEpoch(p, p.eng.now, p.epoch)
	p.park(procReady)
}

// WaitSignal blocks until s fires.
func (p *Proc) WaitSignal(s *Signal) {
	p.checkInterrupt()
	p.epoch++
	p.waitLabel, p.blockedSince = s.name, p.eng.now
	s.waiters = append(s.waiters, waiter{p, p.epoch})
	p.park(procBlocked)
	p.checkInterrupt()
}

// WaitSignalTimeout blocks until s fires or d cycles elapse. It reports
// whether the signal fired (as opposed to the timeout expiring).
func (p *Proc) WaitSignalTimeout(s *Signal, d Time) bool {
	p.checkInterrupt()
	if d <= 0 {
		return false
	}
	p.epoch++
	p.sigFired = false
	p.waitLabel, p.blockedSince = s.name, p.eng.now
	s.waiters = append(s.waiters, waiter{p, p.epoch})
	p.eng.scheduleEpoch(p, p.eng.now+d, p.epoch)
	p.park(procBlocked)
	p.checkInterrupt()
	return p.sigFired
}

// InterruptSignal is the panic value a signal wait raises after the proc
// has been interrupted with Interrupt. It deliberately does not implement
// error: an interrupt that escapes its recovery driver is a program bug
// and should crash the run loudly, not surface as a recoverable failure.
type InterruptSignal struct {
	Proc string // name of the interrupted proc
}

func (p *Proc) checkInterrupt() {
	if p.interrupted {
		panic(InterruptSignal{Proc: p.name})
	}
}

// Interrupt marks the proc for asynchronous abort: if it is blocked on a
// signal it is woken immediately, and its next (or current) WaitSignal /
// WaitSignalTimeout panics with InterruptSignal{}. Pure time waits are
// unaffected, so hardware-drain loops still quiesce normally. Interrupt
// is safe to call from event context; it is a no-op on a done proc. The
// rollback machinery in higher layers recovers the panic — procs that are
// not part of a recovery domain should never be interrupted.
func (p *Proc) Interrupt() {
	if p.state == procDone {
		return
	}
	p.interrupted = true
	if p.state == procBlocked {
		p.sigFired = false
		p.state = procReady
		p.eng.scheduleEpoch(p, p.eng.now, p.epoch)
	}
}

// ClearInterrupt re-arms the proc after an interrupt has been recovered.
func (p *Proc) ClearInterrupt() { p.interrupted = false }

// Interrupted reports whether an interrupt is pending on the proc.
func (p *Proc) Interrupted() bool { return p.interrupted }

// Signal is a broadcast wakeup point: any number of procs may block on it
// and are all released when it fires. Signals carry no state; a fire with
// no waiters is a no-op (use a separate flag for level-sensitive waits).
type Signal struct {
	name    string
	waiters []waiter
}

type waiter struct {
	proc  *Proc
	epoch uint64
}

// NewSignal returns a named signal.
func NewSignal(name string) *Signal { return &Signal{name: name} }

// Fire wakes all procs currently blocked on the signal. The wakeups are
// scheduled at the current time and run in blocking order.
func (s *Signal) Fire(e *Engine) {
	for _, w := range s.waiters {
		if w.proc.epoch != w.epoch || w.proc.state != procBlocked {
			continue // stale: proc already resumed some other way
		}
		w.proc.sigFired = true
		w.proc.state = procReady
		e.scheduleEpoch(w.proc, e.now, w.epoch)
	}
	s.waiters = s.waiters[:0]
}

// Await blocks p until cond() is true, re-testing each time s fires.
// It tests once before blocking, so a condition that already holds
// returns immediately.
func Await(p *Proc, s *Signal, cond func() bool) {
	for !cond() {
		p.WaitSignal(s)
	}
}
