package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCallbackOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same time: schedule order
	end := e.Run()
	if end != 10 {
		t.Fatalf("end time = %d, want 10", end)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestAtInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestProcWait(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Spawn("w", func(p *Proc) {
		at = append(at, p.Now())
		p.Wait(7)
		at = append(at, p.Now())
		p.Wait(0) // no-op
		at = append(at, p.Now())
		p.Wait(3)
		at = append(at, p.Now())
	})
	e.Run()
	want := []Time{0, 7, 7, 10}
	if len(at) != len(want) {
		t.Fatalf("times = %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("times = %v, want %v", at, want)
		}
	}
}

func TestWaitNegativePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "panicked") {
			t.Errorf("negative Wait: recover = %v", r)
		}
	}()
	e.Spawn("bad", func(p *Proc) { p.Wait(-1) })
	e.Run()
}

func TestSignalWakesAllWaiters(t *testing.T) {
	e := NewEngine()
	s := NewSignal("s")
	var woke []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			p.WaitSignal(s)
			woke = append(woke, name)
			if p.Now() != 42 {
				t.Errorf("%s woke at %d, want 42", name, p.Now())
			}
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Wait(42)
		s.Fire(e)
	})
	e.Run()
	if len(woke) != 3 {
		t.Fatalf("woke = %v, want 3 procs", woke)
	}
	// Wakeups run in blocking order.
	if woke[0] != "a" || woke[1] != "b" || woke[2] != "c" {
		t.Fatalf("wake order = %v", woke)
	}
}

func TestSignalTimeout(t *testing.T) {
	e := NewEngine()
	s := NewSignal("s")
	var fired, timedOut bool
	e.Spawn("timeout", func(p *Proc) {
		ok := p.WaitSignalTimeout(s, 10)
		timedOut = !ok
		if p.Now() != 10 {
			t.Errorf("timeout at %d, want 10", p.Now())
		}
	})
	e.Spawn("signaled", func(p *Proc) {
		ok := p.WaitSignalTimeout(s, 100)
		fired = ok
		if p.Now() != 50 {
			t.Errorf("signaled at %d, want 50", p.Now())
		}
	})
	e.Spawn("firer", func(p *Proc) {
		p.Wait(50)
		s.Fire(e)
	})
	e.Run()
	if !timedOut {
		t.Error("first waiter should have timed out")
	}
	if !fired {
		t.Error("second waiter should have been signaled")
	}
}

func TestStaleSignalAfterTimeout(t *testing.T) {
	// A proc that times out and parks again must not be woken by a Fire
	// aimed at its earlier park.
	e := NewEngine()
	s := NewSignal("s")
	var resumes []Time
	e.Spawn("w", func(p *Proc) {
		p.WaitSignalTimeout(s, 5) // times out at 5
		resumes = append(resumes, p.Now())
		p.Wait(100) // parked 5..105; stale Fire at 50 must not wake it
		resumes = append(resumes, p.Now())
	})
	e.Spawn("firer", func(p *Proc) {
		p.Wait(50)
		s.Fire(e)
	})
	e.Run()
	if len(resumes) != 2 || resumes[0] != 5 || resumes[1] != 105 {
		t.Fatalf("resumes = %v, want [5 105]", resumes)
	}
}

func TestAwait(t *testing.T) {
	e := NewEngine()
	s := NewSignal("cond")
	count := 0
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(10)
			count++
			s.Fire(e)
		}
	})
	var doneAt Time
	e.Spawn("consumer", func(p *Proc) {
		Await(p, s, func() bool { return count >= 3 })
		doneAt = p.Now()
	})
	e.Run()
	if doneAt != 30 {
		t.Fatalf("Await completed at %d, want 30", doneAt)
	}
}

func TestAwaitAlreadyTrue(t *testing.T) {
	e := NewEngine()
	s := NewSignal("cond")
	e.Spawn("c", func(p *Proc) {
		Await(p, s, func() bool { return true })
		if p.Now() != 0 {
			t.Errorf("Await blocked until %d on true condition", p.Now())
		}
	})
	e.Run()
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	s := NewSignal("never")
	e.Spawn("stuck", func(p *Proc) { p.WaitSignal(s) })
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "deadlock") {
			t.Errorf("recover = %v, want deadlock panic", r)
		}
		if !strings.Contains(r.(string), "stuck") {
			t.Errorf("deadlock report %q does not name the proc", r)
		}
	}()
	e.Run()
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine()
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Wait(5)
		e.Spawn("child", func(c *Proc) {
			c.Wait(3)
			childAt = c.Now()
		})
		p.Wait(1)
	})
	e.Run()
	if childAt != 8 {
		t.Fatalf("child finished at %d, want 8", childAt)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", func(p *Proc) {
		p.Wait(1)
		panic("kaboom")
	})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "kaboom") {
			t.Errorf("recover = %v, want proc panic", r)
		}
	}()
	e.Run()
}

func TestTimeLimit(t *testing.T) {
	e := NewEngine()
	e.Limit = 100
	e.Spawn("loop", func(p *Proc) {
		for {
			p.Wait(30)
		}
	})
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "limit") {
			t.Errorf("recover = %v, want limit panic", r)
		}
	}()
	e.Run()
}

func TestYield(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run()
	want := "a1 b1 a2"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestResource(t *testing.T) {
	var r Resource
	if s := r.Acquire(10, 5); s != 10 {
		t.Fatalf("first acquire starts at %d, want 10", s)
	}
	if s := r.Acquire(11, 5); s != 15 {
		t.Fatalf("overlapping acquire starts at %d, want 15", s)
	}
	if s := r.Acquire(100, 5); s != 100 {
		t.Fatalf("late acquire starts at %d, want 100", s)
	}
	if r.FreeAt() != 105 {
		t.Fatalf("FreeAt = %d, want 105", r.FreeAt())
	}
}

func TestResourceZeroOccupancy(t *testing.T) {
	var r Resource
	r.Acquire(10, 0)
	if s := r.Acquire(10, 3); s != 10 {
		t.Fatalf("zero-occupancy acquire blocked: start %d, want 10", s)
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.Spawn("setup", func(p *Proc) {
		p.Wait(20)
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 25 {
		t.Fatalf("After fired at %d, want 25", at)
	}
}

func TestPropertyEventsFireInTimeOrder(t *testing.T) {
	// Property: callbacks scheduled at arbitrary times fire in
	// non-decreasing time order, with schedule order breaking ties.
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.At(Time(d), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeadlockDiagnosticContents(t *testing.T) {
	// The structured diagnostic must name every stuck proc, the signal it
	// is parked on, and when it blocked.
	e := NewEngine()
	never := NewSignal("never.fires")
	e.Spawn("early", func(p *Proc) { p.WaitSignal(never) })
	e.Spawn("late", func(p *Proc) {
		p.Wait(37)
		p.WaitSignal(never)
	})
	end, err := e.RunErr()
	if err == nil {
		t.Fatal("RunErr returned nil for a deadlocked run")
	}
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %T, want *DeadlockError", err)
	}
	if de.Now != end || de.Now != 37 {
		t.Errorf("DeadlockError.Now = %d, want 37", de.Now)
	}
	if len(de.Blocked) != 2 {
		t.Fatalf("Blocked = %v, want 2 entries", de.Blocked)
	}
	// Sorted by name: "early" then "late".
	if de.Blocked[0].Name != "early" || de.Blocked[0].Since != 0 {
		t.Errorf("entry 0 = %+v, want early blocked since 0", de.Blocked[0])
	}
	if de.Blocked[1].Name != "late" || de.Blocked[1].Since != 37 {
		t.Errorf("entry 1 = %+v, want late blocked since 37", de.Blocked[1])
	}
	for _, b := range de.Blocked {
		if b.Waiting != "never.fires" {
			t.Errorf("proc %s waiting on %q, want never.fires", b.Name, b.Waiting)
		}
	}
	msg := err.Error()
	for _, want := range []string{"deadlock", "early", "late", "never.fires", "since t=37"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q missing %q", msg, want)
		}
	}
}

func TestRunErrCleanCompletion(t *testing.T) {
	e := NewEngine()
	e.Spawn("ok", func(p *Proc) { p.Wait(5) })
	end, err := e.RunErr()
	if err != nil || end != 5 {
		t.Fatalf("RunErr = (%d, %v), want (5, nil)", end, err)
	}
}

func TestWatchdogDetectsLivelock(t *testing.T) {
	// A proc spinning forever with a flat progress counter is a livelock:
	// the watchdog must stop the run with a structured error.
	e := NewEngine()
	e.SetWatchdog(100, 3, func() int64 { return 0 })
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Wait(10)
		}
	})
	_, err := e.RunErr()
	le, ok := err.(*LivelockError)
	if !ok {
		t.Fatalf("err = %v (%T), want *LivelockError", err, err)
	}
	if le.Checks != 3 || le.Progress != 0 {
		t.Errorf("LivelockError = %+v, want 3 stalled checks at progress 0", le)
	}
	if !strings.Contains(le.Error(), "livelock") {
		t.Errorf("error %q does not mention livelock", le.Error())
	}
}

func TestWatchdogAllowsProgress(t *testing.T) {
	// As long as the probe advances, the watchdog stays quiet even over a
	// long run.
	e := NewEngine()
	var progress int64
	e.SetWatchdog(50, 2, func() int64 { return progress })
	done := false
	e.Spawn("worker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Wait(25)
			progress++
		}
		done = true
	})
	if _, err := e.RunErr(); err != nil {
		t.Fatalf("RunErr = %v, want nil for a progressing run", err)
	}
	if !done {
		t.Error("worker did not finish")
	}
}
