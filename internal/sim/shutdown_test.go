package sim

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// countGoroutines samples the goroutine count after giving exiting
// goroutines a moment to unwind.
func countGoroutines() int {
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

// TestShutdownReapsAbandonedProcs is the leak contract: a run aborted
// by a proc failure leaves sibling procs parked forever, and Shutdown
// must terminate every one of their goroutines.
func TestShutdownReapsAbandonedProcs(t *testing.T) {
	before := countGoroutines()
	boom := errors.New("boom")
	for i := 0; i < 8; i++ {
		e := NewEngine()
		sig := NewSignal("never")
		for j := 0; j < 16; j++ {
			e.Spawn("waiter", func(p *Proc) { p.WaitSignal(sig) })
		}
		e.Spawn("failer", func(p *Proc) {
			p.Wait(10)
			panic(boom)
		})
		_, err := e.RunErr()
		var pf *ProcFailure
		if !errors.As(err, &pf) || !errors.Is(err, boom) {
			t.Fatalf("RunErr = %v, want ProcFailure wrapping boom", err)
		}
		e.Shutdown()
		e.Shutdown() // idempotent
	}
	after := countGoroutines()
	if after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestShutdownRunsTeardownDefers: a reaped proc unwinds via Goexit, so
// its deferred cleanups still run and a recover cannot intercept it.
func TestShutdownRunsTeardownDefers(t *testing.T) {
	e := NewEngine()
	sig := NewSignal("never")
	cleaned := false
	e.Spawn("waiter", func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("teardown delivered as panic %v, want Goexit", r)
			}
			cleaned = true
		}()
		p.WaitSignal(sig)
		t.Error("body continued past the kill point")
	})
	e.Spawn("failer", func(p *Proc) { panic(errors.New("abort")) })
	if _, err := e.RunErr(); err == nil {
		t.Fatal("want proc failure")
	}
	e.Shutdown()
	if !cleaned {
		t.Fatal("deferred cleanup did not run during Shutdown")
	}
}

// TestShutdownNeverStartedProc covers procs spawned but reaped before
// their first resume: the body must not run at all.
func TestShutdownNeverStartedProc(t *testing.T) {
	e := NewEngine()
	e.Spawn("failer", func(p *Proc) { panic(errors.New("abort")) })
	ran := false
	e.Spawn("late", func(p *Proc) { ran = true })
	if _, err := e.RunErr(); err == nil {
		t.Fatal("want proc failure")
	}
	e.Shutdown()
	if ran {
		t.Fatal("reaped proc body ran")
	}
}

// TestCancelPollAborts: the host escape hatch stops the run with the
// poll's error, and an armed-but-quiet poll perturbs nothing.
func TestCancelPollAborts(t *testing.T) {
	canceled := errors.New("host canceled")
	run := func(poll func() error) (Time, error) {
		e := NewEngine()
		if poll != nil {
			e.SetCancelPoll(4, poll)
		}
		e.Spawn("ticker", func(p *Proc) {
			for i := 0; i < 1000; i++ {
				p.Wait(1)
			}
		})
		end, err := e.RunErr()
		e.Shutdown()
		return end, err
	}

	baseEnd, err := run(nil)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	quietEnd, err := run(func() error { return nil })
	if err != nil || quietEnd != baseEnd {
		t.Fatalf("quiet poll perturbed the run: end=%d err=%v (want %d, nil)", quietEnd, err, baseEnd)
	}
	calls := 0
	end, err := run(func() error {
		calls++
		if calls >= 10 {
			return canceled
		}
		return nil
	})
	if !errors.Is(err, canceled) {
		t.Fatalf("err = %v, want the poll's error", err)
	}
	if end >= baseEnd {
		t.Fatalf("cancel did not cut the run short (end=%d, full=%d)", end, baseEnd)
	}
}

// TestLimitReturnsStructuredError: exceeding Limit is a *LimitError
// from RunErr, not a panic, so hosts can budget cycles per job.
func TestLimitReturnsStructuredError(t *testing.T) {
	e := NewEngine()
	e.Limit = 50
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Wait(1)
		}
	})
	end, err := e.RunErr()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LimitError", err)
	}
	if le.Limit != 50 || end > 50 {
		t.Fatalf("limit error %+v at end=%d, want budget 50 respected", le, end)
	}
	e.Shutdown()
}
