package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is a point in simulated time, measured in cycles.
type Time = int64

// event is a scheduled occurrence: either a plain callback or the
// resumption of a blocked proc.
type event struct {
	at    Time
	seq   uint64 // tie-break so equal-time events fire in schedule order
	fn    func()
	proc  *Proc
	epoch uint64 // wakeup generation; stale if != proc.epoch
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push is the container/heap grow half of the event kernel.
//
//t3d:hotpath
func (h *eventHeap) Push(x any) {
	//lint:allow hotalloc the heap's backing array grows amortized-O(1) and is reused across the run; per-event cost is a slot store
	*h = append(*h, x.(*event))
}

// Pop is the container/heap shrink half of the event kernel.
//
//t3d:hotpath
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable;
// create one with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	procs   []*Proc
	yield   chan yieldMsg // procs -> engine handoff
	running bool
	tracer  Tracer

	// Watchdog state (SetWatchdog).
	wdInterval Time
	wdStalls   int
	wdProbe    func() int64
	wdNext     Time
	wdLast     int64
	wdCount    int

	// Cancel-poll state (SetCancelPoll).
	cancelPoll  func() error
	cancelEvery int
	cancelCount int

	// Limit guards against runaway simulations; 0 means no limit.
	// Exceeding it surfaces as a *LimitError from RunErr (a panic from
	// Run), so hosting layers can budget simulated cycles per run.
	Limit Time

	// processed counts events popped across all runs — the engine's unit
	// of host work, reported by Events for throughput accounting.
	processed int64
}

type yieldKind int

const (
	yieldBlocked yieldKind = iota // proc parked itself (event or signal pending)
	yieldDone                     // proc body returned
	yieldPanic                    // proc body panicked
)

type yieldMsg struct {
	kind  yieldKind
	proc  *Proc
	panic any
}

// NewEngine returns an engine with time zero and no pending events.
func NewEngine() *Engine {
	return &Engine{yield: make(chan yieldMsg)}
}

// Now reports the current simulated time in cycles.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at the given absolute time, which must not be in
// the past. fn runs inline in the engine loop and must not block.
//
//t3d:hotpath
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		//lint:allow hotalloc misuse-panic path only; the steady-state schedule never formats
		panic(fmt.Sprintf("sim: At(%d) is in the past (now=%d)", t, e.now))
	}
	e.seq++
	//lint:allow hotalloc one event header per scheduled callback is the DES cost model; pooling popped headers is the ROADMAP item-1 follow-up
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
//
//t3d:hotpath
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// scheduleEpoch arranges for p to resume at time t, tagged with the wakeup
// generation so stale events are skipped.
//
//t3d:hotpath
func (e *Engine) scheduleEpoch(p *Proc, t Time, epoch uint64) {
	e.seq++
	//lint:allow hotalloc one event header per proc wakeup is the DES cost model; pooling popped headers is the ROADMAP item-1 follow-up
	heap.Push(&e.events, &event{at: t, seq: e.seq, proc: p, epoch: epoch})
}

// Spawn creates a proc named name running body. The proc starts when the
// engine reaches the current time in its event loop (immediately if the
// engine is already running). Spawn may be called before Run or from
// within a running proc.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				p.state = procDone
				e.yield <- yieldMsg{kind: yieldPanic, proc: p, panic: r}
				return
			}
			p.state = procDone
			e.yield <- yieldMsg{kind: yieldDone, proc: p}
		}()
		if p.killed {
			return // reaped by Shutdown before ever running
		}
		body(p)
	}()
	p.state = procReady
	p.epoch = 1
	e.scheduleEpoch(p, e.now, p.epoch)
	return p
}

// SpawnDaemon is like Spawn, but the proc is exempt from deadlock
// detection: it is expected to idle forever (device drain loops, pollers).
func (e *Engine) SpawnDaemon(name string, body func(p *Proc)) *Proc {
	p := e.Spawn(name, body)
	p.daemon = true
	return p
}

// BlockedProc is one entry of a deadlock diagnostic: a proc that can
// never resume, the signal it is parked on, and when it parked.
type BlockedProc struct {
	Name    string
	Waiting string // name of the signal the proc is blocked on
	Since   Time   // simulated time at which it blocked
}

// DeadlockError reports that the event queue drained while non-daemon
// procs were still parked on signals that can never fire. The dump lists
// every stuck proc with its wait reason and blocked-at time, so the
// failure is actionable instead of a bare proc-name list.
type DeadlockError struct {
	Now     Time
	Blocked []BlockedProc
}

func (d *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at t=%d — no events pending but %d proc(s) blocked:", d.Now, len(d.Blocked))
	for _, p := range d.Blocked {
		fmt.Fprintf(&b, "\n  %s: blocked on %q since t=%d (for %d cycles)",
			p.Name, p.Waiting, p.Since, d.Now-p.Since)
	}
	return b.String()
}

// LivelockError reports that the watchdog's progress probe stopped
// advancing while events kept firing — the signature of a retransmit
// storm or polling loop that will never converge.
type LivelockError struct {
	Now      Time
	Progress int64 // the stuck probe value
	Interval Time  // watchdog sampling interval
	Checks   int   // consecutive samples with no progress
}

func (l *LivelockError) Error() string {
	return fmt.Sprintf("sim: livelock at t=%d — progress probe stuck at %d for %d consecutive checks (%d cycles)",
		l.Now, l.Progress, l.Checks, Time(l.Checks)*l.Interval)
}

// ProcFailure reports that a proc body panicked with an error value —
// the convention for simulated hardware faults that abort a run (for
// example a partitioned torus). RunErr returns it instead of panicking,
// so callers can errors.Is/As into the underlying cause. Procs that
// panic with a non-error value still crash the run: that is a bug, not
// a modeled failure.
type ProcFailure struct {
	Proc string // name of the failed proc
	Err  error  // the error the proc panicked with
}

func (f *ProcFailure) Error() string {
	return fmt.Sprintf("sim: proc %q failed: %v", f.Proc, f.Err)
}

func (f *ProcFailure) Unwrap() error { return f.Err }

// LimitError reports that the engine's cycle Limit was reached: the
// next event lay beyond the budget. The simulation state is intact up
// to Now, but the run did not finish — hosting layers treat this as a
// per-run simulated-cycle deadline.
type LimitError struct {
	Limit Time // the armed budget
	At    Time // scheduled time of the event that crossed it
}

func (l *LimitError) Error() string {
	return fmt.Sprintf("sim: time limit %d exceeded (next event at t=%d)", l.Limit, l.At)
}

// SetCancelPoll installs a host-side escape hatch: every `every`
// processed events the engine calls poll, and a non-nil return aborts
// the run with that error from RunErr. This is the only sanctioned way
// for wall-clock concerns (job deadlines, client disconnects, process
// drain) to reach into a run: the poll runs on the engine goroutine at
// deterministic points, never mutates simulation state, and an unarmed
// engine is bit-identical to one polling a closure that returns nil.
// Pass a nil poll to disarm. After an aborted run the machine is dead;
// call Shutdown to reap its proc goroutines.
func (e *Engine) SetCancelPoll(every int, poll func() error) {
	if poll != nil && every <= 0 {
		panic("sim: cancel poll needs a positive event interval")
	}
	e.cancelPoll, e.cancelEvery, e.cancelCount = poll, every, 0
}

// SetWatchdog installs a quiescence watchdog: every interval cycles the
// engine samples progress(); if the value is unchanged for stalls
// consecutive samples while events are still firing, the run fails with
// a LivelockError. Pass a nil probe to disable. The probe must be cheap
// and side-effect free; it runs inline in the event loop.
func (e *Engine) SetWatchdog(interval Time, stalls int, progress func() int64) {
	if progress != nil && (interval <= 0 || stalls <= 0) {
		panic("sim: watchdog needs a positive interval and stall count")
	}
	e.wdInterval, e.wdStalls, e.wdProbe = interval, stalls, progress
	e.wdNext = e.now + interval
	e.wdCount = 0
	if progress != nil {
		e.wdLast = progress()
	}
}

// Run processes events until the queue is empty or the optional Limit is
// reached. It returns the final simulated time. Run panics if, at the end,
// some proc is still blocked on a signal that can never fire (deadlock),
// if the watchdog detects livelock, or if any proc body panicked. RunErr
// is the variant that surfaces deadlock and livelock as errors.
func (e *Engine) Run() Time {
	t, err := e.RunErr()
	if err != nil {
		panic(err.Error())
	}
	return t
}

// RunErr is Run with structured failure reporting: deadlock and livelock
// are returned as *DeadlockError / *LivelockError, and a proc that panics
// with an error value is returned as a *ProcFailure, instead of
// panicking — so callers can inspect the failure programmatically.
func (e *Engine) RunErr() (Time, error) {
	if e.running {
		panic("sim: Engine.Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()

	for len(e.events) > 0 {
		if e.cancelPoll != nil {
			e.cancelCount++
			if e.cancelCount >= e.cancelEvery {
				e.cancelCount = 0
				if err := e.cancelPoll(); err != nil {
					return e.now, err
				}
			}
		}
		ev := heap.Pop(&e.events).(*event)
		e.processed++
		if e.Limit > 0 && ev.at > e.Limit {
			return e.now, &LimitError{Limit: e.Limit, At: ev.at}
		}
		if ev.at < e.now {
			panic("sim: event in the past")
		}
		e.now = ev.at
		if e.wdProbe != nil && e.now >= e.wdNext {
			for e.now >= e.wdNext {
				e.wdNext += e.wdInterval
			}
			if v := e.wdProbe(); v == e.wdLast {
				e.wdCount++
				if e.wdCount >= e.wdStalls {
					return e.now, &LivelockError{Now: e.now, Progress: v,
						Interval: e.wdInterval, Checks: e.wdCount}
				}
			} else {
				e.wdLast, e.wdCount = v, 0
			}
		}
		if ev.proc != nil {
			p := ev.proc
			if p.state == procDone || p.state == procRunning || ev.epoch != p.epoch {
				continue // stale wakeup (finished proc or superseded event)
			}
			p.state = procRunning
			p.epoch++ // invalidate any sibling wakeups for the old park
			p.resume <- struct{}{}
			msg := <-e.yield
			if msg.kind == yieldPanic {
				if err, ok := msg.panic.(error); ok {
					return e.now, &ProcFailure{Proc: msg.proc.name, Err: err}
				}
				panic(fmt.Sprintf("sim: proc %q panicked: %v", msg.proc.name, msg.panic))
			}
			continue
		}
		ev.fn()
	}

	var stuck []BlockedProc
	for _, p := range e.procs {
		if p.state == procBlocked && !p.daemon {
			stuck = append(stuck, BlockedProc{Name: p.name, Waiting: p.waitLabel, Since: p.blockedSince})
		}
	}
	if len(stuck) > 0 {
		sort.Slice(stuck, func(i, j int) bool { return stuck[i].Name < stuck[j].Name })
		return e.now, &DeadlockError{Now: e.now, Blocked: stuck}
	}
	return e.now, nil
}

// Idle reports whether the engine has no pending events.
func (e *Engine) Idle() bool { return len(e.events) == 0 }

// Events reports how many events the engine has processed across all
// runs: the host-side unit of simulation work (events per wall second
// is the serving-capacity metric in BENCH_*.json).
func (e *Engine) Events() int64 { return e.processed }

// Shutdown reaps every live proc goroutine of a stopped engine. A run
// that ends early — cancel poll, cycle Limit, proc failure, deadlock —
// abandons its sibling procs parked on resume channels that will never
// fire again; a long-running host (the job service) would leak one
// goroutine per PE per aborted run. Shutdown wakes each parked proc
// with the killed flag set, which makes it unwind via runtime.Goexit
// (running its deferred cleanups, skipping the rest of its body) and
// report done. The engine is unusable afterwards. Shutdown is
// idempotent and safe on a cleanly finished engine (every proc already
// done); it must not be called while Run is in progress.
func (e *Engine) Shutdown() {
	if e.running {
		panic("sim: Shutdown called during Run")
	}
	for _, p := range e.procs {
		p.killed = true
		// A teardown defer may legally park once more (yieldBlocked);
		// keep resuming until the goroutine reports done.
		for p.state != procDone {
			p.state = procRunning
			p.resume <- struct{}{}
			<-e.yield
		}
	}
	e.procs = nil
	e.events = nil
}
