package net

import (
	"errors"
	"fmt"
)

// ErrPartitioned reports that the degraded torus has no surviving path
// between two nodes. It is a permanent condition — hard link faults never
// heal — so callers must fail the operation rather than retry.
var ErrPartitioned = errors.New("net: torus partitioned")

// PartitionError is the concrete no-path failure for one (src, dst) pair.
// It unwraps to ErrPartitioned so errors.Is works across layers.
type PartitionError struct {
	Src, Dst int
}

func (e *PartitionError) Error() string {
	return fmt.Sprintf("net: no route from PE %d to PE %d: torus partitioned", e.Src, e.Dst)
}

func (e *PartitionError) Unwrap() error { return ErrPartitioned }

// FailLink permanently kills the link leaving node in direction dir
// (0..5: +x,-x,+y,-y,+z,-z). The route cache is invalidated so future
// sends are recomputed around the dead link, and every in-flight data
// packet whose route crosses it is force-dropped — the loss is reported
// to the reliability layer through the normal FaultDrop verdict, which
// retransmits over the recomputed route. Killing a dead link is a no-op.
func (n *Network) FailLink(node, dir int) {
	if node < 0 || node >= n.nodes || dir < 0 || dir >= numDirs {
		panic(fmt.Sprintf("net: FailLink(%d,%d) out of range", node, dir))
	}
	if n.dead[node][dir] {
		return
	}
	n.dead[node][dir] = true
	n.deadLinks++
	n.invalidateRoutes()
	//lint:allow determinism every flight crossing the dead link gets the same forced mark; the set of marks and the counter total are order-independent
	for _, fl := range n.flights {
		if fl.forced {
			continue
		}
		for _, hop := range fl.route {
			if hop[0] == node && hop[1] == dir {
				fl.forced = true
				n.HardDropped++
				break
			}
		}
	}
}

// LinkDead reports whether the link leaving node in direction dir has
// hard-faulted.
func (n *Network) LinkDead(node, dir int) bool { return n.dead[node][dir] }

// DeadLinks returns the number of permanently failed links.
func (n *Network) DeadLinks() int { return n.deadLinks }

// invalidateRoutes drops every cached route after a topology change.
func (n *Network) invalidateRoutes() {
	for i := range n.routeState {
		n.routeState[i] = routeUnknown
		n.routeCache[i] = nil
	}
}

const (
	routeUnknown  uint8 = iota
	routeKnown          // cached, same as the fault-free path
	routeRerouted       // cached, detours around at least one dead link
	routeNone           // no surviving path: partitioned pair
)

// RouteErr returns the route from src to dst on the (possibly degraded)
// torus, or a *PartitionError when no path survives. Routes are cached
// per (src, dst) — the common case is a map lookup with zero allocation —
// and the cache is invalidated by FailLink. The returned slice is shared;
// callers must not mutate it.
//
//t3d:hotpath
func (n *Network) RouteErr(src, dst int) ([][2]int, error) {
	idx := src*n.nodes + dst
	switch n.routeState[idx] {
	case routeKnown, routeRerouted:
		return n.routeCache[idx], nil
	case routeNone:
		//lint:allow hotalloc partitioned-pair failure path; the verdict is cached, so the error is built once per dead pair per lookup
		return nil, &PartitionError{Src: src, Dst: dst}
	}
	//lint:allow hotalloc route construction runs once per (src, dst) per topology change; every later lookup hits the cache
	r, ok := n.computeRoute(src, dst)
	if !ok {
		n.routeState[idx] = routeNone
		//lint:allow hotalloc partitioned-pair failure path discovered on the cache miss
		return nil, &PartitionError{Src: src, Dst: dst}
	}
	state := routeKnown
	//lint:allow hotalloc reroute classification runs once per (src, dst) per topology change, on the cache-miss path only
	if n.deadLinks > 0 && n.dimOrderBroken(src, dst) {
		// The pair's natural dimension-order path crosses a dead link:
		// its packets travel a detour, even if the detour is no longer
		// (on a 2-ring the reverse link reaches the same neighbor).
		state = routeRerouted
	}
	n.routeState[idx] = state
	n.routeCache[idx] = r
	return r, nil
}

// dimOrderBroken reports whether the fault-free dimension-order path from
// src to dst crosses a hard-faulted link.
func (n *Network) dimOrderBroken(src, dst int) bool {
	for _, hop := range n.dimOrderRoute(src, dst) {
		if n.dead[hop[0]][hop[1]] {
			return true
		}
	}
	return false
}

// Reachable reports whether a route from src to dst survives.
func (n *Network) Reachable(src, dst int) bool {
	_, err := n.RouteErr(src, dst)
	return err == nil
}

// Partitioned reports whether any ordered node pair has lost all paths —
// the machine-level "is the torus disconnected" diagnostic.
func (n *Network) Partitioned() bool {
	if n.deadLinks == 0 {
		return false
	}
	for s := 0; s < n.nodes; s++ {
		for d := 0; d < n.nodes; d++ {
			if !n.Reachable(s, d) {
				return true
			}
		}
	}
	return false
}

// MinHops returns the fault-free dimension-order hop count from src to
// dst — the baseline against which rerouted-hop inflation is measured.
func (n *Network) MinHops(src, dst int) int {
	cur := n.Coord(src)
	want := n.Coord(dst)
	hops := 0
	for d := 0; d < 3; d++ {
		size := n.cfg.Shape[d]
		fwd := (want[d] - cur[d] + size) % size
		back := (cur[d] - want[d] + size) % size
		if fwd <= back {
			hops += fwd
		} else {
			hops += back
		}
	}
	return hops
}

// computeRoute builds a route on the degraded torus. With no dead links
// it is plain dimension-order routing. Otherwise it first tries greedy
// per-hop deflection — at each hop, take the first dimension still
// needing correction whose link is alive, trying the short way around
// the ring and then the long way — and falls back to a BFS route table
// over the surviving links when deflection dead-ends. Both passes are
// fully deterministic: fixed dimension order, fixed direction
// preference, lexicographic BFS tie-break.
func (n *Network) computeRoute(src, dst int) ([][2]int, bool) {
	if src == dst {
		return nil, true
	}
	if n.deadLinks == 0 {
		return n.dimOrderRoute(src, dst), true
	}
	if r, ok := n.deflectRoute(src, dst); ok {
		return r, true
	}
	return n.bfsRoute(src, dst)
}

func (n *Network) dimOrderRoute(src, dst int) [][2]int {
	var route [][2]int
	cur := n.Coord(src)
	want := n.Coord(dst)
	for d := 0; d < 3; d++ {
		for cur[d] != want[d] {
			next, dir := step(cur[d], want[d], n.cfg.Shape[d], d)
			route = append(route, [2]int{n.Index(cur), dir})
			cur[d] = next
		}
	}
	return route
}

// deflectRoute is the greedy degraded-mode router. It can ping-pong
// around an awkward fault pattern, so progress is bounded: past the
// bound the caller falls back to BFS, which is exact.
func (n *Network) deflectRoute(src, dst int) ([][2]int, bool) {
	var route [][2]int
	cur := n.Coord(src)
	want := n.Coord(dst)
	limit := 2*(n.cfg.Shape[0]+n.cfg.Shape[1]+n.cfg.Shape[2]) + 4
	for steps := 0; n.Index(cur) != n.Index(want); steps++ {
		if steps >= limit {
			return nil, false
		}
		moved := false
		for d := 0; d < 3 && !moved; d++ {
			if cur[d] == want[d] {
				continue
			}
			node := n.Index(cur)
			size := n.cfg.Shape[d]
			next, dir := step(cur[d], want[d], size, d)
			if !n.dead[node][dir] {
				route = append(route, [2]int{node, dir})
				cur[d] = next
				moved = true
				break
			}
			// Deflect: the long way around this ring. On a 2-ring both
			// directions cross the same physical wire pair, so this only
			// helps when the ring is longer.
			altDir := dir ^ 1
			if size > 2 && !n.dead[node][altDir] {
				altNext := (cur[d] + 1) % size
				if altDir&1 == 1 {
					altNext = (cur[d] - 1 + size) % size
				}
				route = append(route, [2]int{node, altDir})
				cur[d] = altNext
				moved = true
			}
		}
		if !moved {
			return nil, false
		}
	}
	return route, true
}

// bfsRoute finds a shortest path over the surviving links. Neighbor
// expansion follows the fixed direction order 0..5, so equal-length
// paths resolve identically on every run.
func (n *Network) bfsRoute(src, dst int) ([][2]int, bool) {
	prev := make([]int32, n.nodes) // predecessor node, -1 = unvisited
	via := make([]int8, n.nodes)   // direction taken out of prev
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = int32(src)
	queue := []int{src}
	for len(queue) > 0 && prev[dst] == -1 {
		cur := queue[0]
		queue = queue[1:]
		c := n.Coord(cur)
		for dir := 0; dir < numDirs; dir++ {
			if n.dead[cur][dir] {
				continue
			}
			d := dir / 2
			size := n.cfg.Shape[d]
			if size == 1 {
				continue // self-loop dimension
			}
			nc := c
			if dir&1 == 0 {
				nc[d] = (c[d] + 1) % size
			} else {
				nc[d] = (c[d] - 1 + size) % size
			}
			next := n.Index(nc)
			if next == cur || prev[next] != -1 {
				continue
			}
			prev[next] = int32(cur)
			via[next] = int8(dir)
			queue = append(queue, next)
		}
	}
	if prev[dst] == -1 {
		return nil, false
	}
	// Walk back from dst, then reverse.
	var rev [][2]int
	for at := dst; at != src; at = int(prev[at]) {
		rev = append(rev, [2]int{int(prev[at]), int(via[at])})
	}
	route := make([][2]int, len(rev))
	for i := range rev {
		route[i] = rev[len(rev)-1-i]
	}
	return route, true
}

// flight tracks one in-flight data packet so a link dying mid-transit
// can retroactively claim it.
type flight struct {
	route  [][2]int
	forced bool // force-drop at delivery: a route link hard-faulted
}

// trackFlight registers a data packet and returns its id.
func (n *Network) trackFlight(route [][2]int) int64 {
	n.flightSeq++
	n.flights[n.flightSeq] = &flight{route: route}
	return n.flightSeq
}

// RerouteStats reports how many packets took a non-minimal path and the
// total extra hops — the rerouted-hop inflation metric.
func (n *Network) RerouteStats() (packets, extraHops int64) {
	return n.ReroutedPackets, n.ExtraHops
}
