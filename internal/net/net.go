// Package net models the CRAY-T3D interconnect: a 3-D torus with
// dimension-order routing.
//
// The paper's measurements see the network two ways: as a small per-hop
// latency (13–20 ns, 2–3 cycles per hop, §4.2 — all headline measurements
// are to an adjacent node) and as a bandwidth-limiting pipe once bulk
// mechanisms stream packets through it (§6). The model therefore charges
// a fixed latency per hop and occupies each traversed link for a
// header + payload duration, so both effects emerge.
//
// The network is payload-agnostic: callers provide a delivery callback
// and the network invokes it at the arrival time. All shell semantics
// (what a remote read does at the far end) live in package shell.
package net

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes the torus.
type Config struct {
	Shape [3]int // nodes per dimension; product = node count

	HopLatency sim.Time // cycles for a packet head to cross one hop
	HeaderOcc  sim.Time // link occupancy of the packet header
	FlitOcc    sim.Time // link occupancy per 8 bytes of payload

	// MarkThreshold is the ECN-style congestion signal: a data packet
	// that queues for more than this many cycles behind earlier traffic
	// at any single link on its route is delivered marked
	// (congestion experienced). Marking is observation only — timing is
	// unchanged — so software flow control can react before queues
	// collapse into retransmit storms. 0 disables marking.
	MarkThreshold sim.Time
}

// DefaultConfig returns torus parameters matching the paper: 2 cycles per
// hop (13 ns, the low end of the measured 2–3), with link bandwidth high
// enough that the shell injection ports and the BLT engine, not the
// fabric, are the bottlenecks for the single-sender microbenchmarks.
func DefaultConfig(nodes int) Config {
	// A non-positive count yields the zero shape rather than a panic, so
	// NewChecked can reject DefaultConfig(bad) with an error; the
	// unchecked New still fails fast on the invalid shape.
	shape, _ := ShapeForErr(nodes)
	return Config{
		Shape:      shape,
		HopLatency: 2,
		HeaderOcc:  1,
		FlitOcc:    2,
		// ~14 queued line-sized packets on one link: well past the point
		// where a hotspot is forming but early enough for senders to back
		// off before slots overwrite and retransmits storm.
		MarkThreshold: 128,
	}
}

// Validate checks the configuration for construction-time errors: a
// non-positive shape dimension, a node-count mismatch (when nodes > 0),
// or negative timing parameters. Catching these here turns a cryptic
// panic deep inside a run into an immediate, actionable error.
func (c Config) Validate(nodes int) error {
	for d, s := range c.Shape {
		if s <= 0 {
			return fmt.Errorf("net: shape %v has non-positive dimension %d", c.Shape, d)
		}
	}
	if n := c.Shape[0] * c.Shape[1] * c.Shape[2]; nodes > 0 && n != nodes {
		return fmt.Errorf("net: shape %v yields %d nodes, want %d", c.Shape, n, nodes)
	}
	if c.HopLatency < 0 || c.HeaderOcc < 0 || c.FlitOcc < 0 {
		return fmt.Errorf("net: negative timing parameter (hop=%d header=%d flit=%d)",
			c.HopLatency, c.HeaderOcc, c.FlitOcc)
	}
	if c.MarkThreshold < 0 {
		return fmt.Errorf("net: negative congestion mark threshold %d", c.MarkThreshold)
	}
	return nil
}

// ShapeFor factors n into three near-equal power-of-two-friendly
// dimensions. n must be positive; use ShapeForErr to get the failure as
// an error instead of a panic.
func ShapeFor(n int) [3]int {
	s, err := ShapeForErr(n)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// ShapeForErr is ShapeFor with error reporting for non-positive counts.
func ShapeForErr(n int) ([3]int, error) {
	if n <= 0 {
		return [3]int{}, fmt.Errorf("net: node count must be positive, got %d", n)
	}
	shape := [3]int{1, 1, 1}
	rem := n
	// Repeatedly peel the smallest prime factor onto the smallest dim.
	for rem > 1 {
		f := smallestFactor(rem)
		small := 0
		for d := 1; d < 3; d++ {
			if shape[d] < shape[small] {
				small = d
			}
		}
		shape[small] *= f
		rem /= f
	}
	return shape, nil
}

func smallestFactor(n int) int {
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return f
		}
	}
	return n
}

// direction indexes a node's six outgoing links.
const numDirs = 6

// Fault is the verdict on a data packet's payload after crossing the
// fabric. The T3D's low-level flow control still delivers and
// acknowledges the packet envelope on time — a transient fault damages
// only the payload, which is exactly the failure a software reliability
// layer must detect end to end.
type Fault int

const (
	// FaultNone: the payload arrived intact.
	FaultNone Fault = iota
	// FaultDrop: the payload was lost in flight; nothing lands.
	FaultDrop
	// FaultCorrupt: the payload arrived bit-flipped.
	FaultCorrupt
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// FaultHook decides the fate of one data packet. route lists the
// (node, direction) links the packet traverses and hopTimes the time the
// packet head starts service on each of them, so window-based link
// faults can be evaluated precisely. Control packets (read requests,
// responses, acknowledgements) never consult the hook.
type FaultHook interface {
	PacketFault(src, dst, payloadBytes int, route [][2]int, hopTimes []sim.Time) Fault
}

// Network is the torus fabric.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	nodes int
	links [][numDirs]sim.Resource
	busy  [][numDirs]sim.Time // accumulated occupancy per link
	hook  FaultHook

	// Degraded-mode routing state (route.go): permanently dead links,
	// the per-(src,dst) route cache, and in-flight data packets that a
	// dying link can retroactively claim.
	dead       [][numDirs]bool
	deadLinks  int
	routeCache [][][2]int
	routeState []uint8
	flights    map[int64]*flight
	flightSeq  int64

	// Stats.
	Packets, PayloadBytes int64
	Dropped, Corrupted    int64
	// MarkedPackets counts data packets delivered with the congestion-
	// experienced mark: they queued past MarkThreshold at a hot link.
	MarkedPackets int64
	// HardDropped counts in-flight packets lost to a link hard-fault,
	// Unroutable packets abandoned because no path survived, and
	// ReroutedPackets/ExtraHops the non-minimal-path inflation.
	HardDropped, Unroutable    int64
	ReroutedPackets, ExtraHops int64
}

// New builds the fabric, panicking on an invalid configuration; use
// NewChecked to get the validation failure as an error.
func New(eng *sim.Engine, cfg Config) *Network {
	n, err := NewChecked(eng, cfg)
	if err != nil {
		panic(err.Error())
	}
	return n
}

// NewChecked builds the fabric, rejecting invalid configurations with an
// error at construction time.
func NewChecked(eng *sim.Engine, cfg Config) (*Network, error) {
	if err := cfg.Validate(0); err != nil {
		return nil, err
	}
	n := cfg.Shape[0] * cfg.Shape[1] * cfg.Shape[2]
	return &Network{
		eng:        eng,
		cfg:        cfg,
		nodes:      n,
		links:      make([][numDirs]sim.Resource, n),
		busy:       make([][numDirs]sim.Time, n),
		dead:       make([][numDirs]bool, n),
		routeCache: make([][][2]int, n*n),
		routeState: make([]uint8, n*n),
		flights:    make(map[int64]*flight),
	}, nil
}

// SetFaultHook installs (or, with nil, removes) the fault injector
// consulted for every data packet.
func (n *Network) SetFaultHook(h FaultHook) { n.hook = h }

// Nodes returns the node count.
func (n *Network) Nodes() int { return n.nodes }

// Config returns the fabric parameters.
func (n *Network) Config() Config { return n.cfg }

// Coord maps a node index to torus coordinates.
func (n *Network) Coord(pe int) [3]int {
	s := n.cfg.Shape
	return [3]int{pe % s[0], (pe / s[0]) % s[1], pe / (s[0] * s[1])}
}

// Index maps torus coordinates to a node index.
func (n *Network) Index(c [3]int) int {
	s := n.cfg.Shape
	return c[0] + s[0]*(c[1]+s[1]*c[2])
}

// step returns the next coordinate and link direction moving from x toward
// y along dimension d, taking the shorter way around the torus.
func step(x, y, size, dim int) (next, dir int) {
	fwd := (y - x + size) % size
	back := (x - y + size) % size
	if fwd <= back {
		return (x + 1) % size, 2 * dim // positive direction
	}
	return (x - 1 + size) % size, 2*dim + 1
}

// Route returns the route from src to dst as a list of (node, direction)
// link traversals: dimension-order on a healthy torus, rerouted around
// dead links on a degraded one. An empty route means src == dst. Routes
// are cached per (src, dst) — repeated sends do not reallocate — and the
// cache is invalidated on topology change (FailLink). Route panics with
// a *PartitionError if no path survives; use RouteErr to get the failure
// as an error. The returned slice is shared: callers must not mutate it.
func (n *Network) Route(src, dst int) [][2]int {
	r, err := n.RouteErr(src, dst)
	if err != nil {
		panic(err)
	}
	return r
}

// HopCount returns the number of links on the route from src to dst.
func (n *Network) HopCount(src, dst int) int { return len(n.Route(src, dst)) }

// occupancy returns how long a packet with the given payload holds each
// link it traverses.
func (n *Network) occupancy(payloadBytes int) sim.Time {
	flits := sim.Time((payloadBytes + 7) / 8)
	return n.cfg.HeaderOcc + flits*n.cfg.FlitOcc
}

// Send injects a control packet at src at the current time and invokes
// deliver at the moment its tail arrives at dst. The head advances
// HopLatency per hop; each traversed link is occupied for the packet's
// full length, so concurrent streams through a link serialize. Control
// packets are never faulted.
func (n *Network) Send(src, dst, payloadBytes int, deliver func()) {
	n.send(src, dst, payloadBytes, false, func(Fault, bool) { deliver() })
}

// SendData injects a data-carrying packet: identical timing to Send, but
// the fault hook (if any) may damage the payload in flight, and deliver
// receives the verdict. The packet envelope always arrives — transient
// faults hit the data path, not the hardware flow control — so callers
// must decide what a dropped or corrupted payload means at the far end.
func (n *Network) SendData(src, dst, payloadBytes int, deliver func(f Fault)) {
	n.send(src, dst, payloadBytes, true, func(f Fault, _ bool) { deliver(f) })
}

// SendDataEx is SendData with the congestion verdict: deliver also
// receives whether the packet queued past MarkThreshold at a hot link —
// the ECN-style congestion-experienced mark the overload-protection
// layer feeds back to senders.
func (n *Network) SendDataEx(src, dst, payloadBytes int, deliver func(f Fault, marked bool)) {
	n.send(src, dst, payloadBytes, true, deliver)
}

func (n *Network) send(src, dst, payloadBytes int, faultable bool, deliver func(f Fault, marked bool)) {
	n.Packets++
	n.PayloadBytes += int64(payloadBytes)
	occ := n.occupancy(payloadBytes)
	t := n.eng.Now()
	route, err := n.RouteErr(src, dst)
	//lint:allow errtaxonomy the only failure here is partition; it is deliberately translated into the loss (FaultDrop) and deadlock reporting paths below
	if err != nil {
		// No surviving path. A data packet is reported lost so the
		// reliability layer's retries can exhaust into an explicit
		// failure; a control packet is abandoned, which surfaces as a
		// structured DeadlockError rather than a silent hang.
		n.Unroutable++
		if faultable {
			n.Dropped++
			n.eng.At(t+1, func() { deliver(FaultDrop, false) })
		}
		return
	}
	if n.deadLinks > 0 && n.routeState[src*n.nodes+dst] == routeRerouted {
		n.ReroutedPackets++
		if extra := len(route) - n.MinHops(src, dst); extra > 0 {
			n.ExtraHops += int64(extra)
		}
	}
	var hopTimes []sim.Time
	if faultable && n.hook != nil {
		hopTimes = make([]sim.Time, 0, len(route))
	}
	marked := false
	for _, hop := range route {
		link := &n.links[hop[0]][hop[1]]
		start := link.Acquire(t, occ)
		if hopTimes != nil {
			hopTimes = append(hopTimes, start)
		}
		// Congestion-experienced: the packet queued behind earlier
		// traffic at this link for longer than the mark threshold.
		if thr := n.cfg.MarkThreshold; faultable && thr > 0 && start-t > thr {
			marked = true
		}
		t = start + n.cfg.HopLatency
		n.busy[hop[0]][hop[1]] += occ
	}
	if marked {
		n.MarkedPackets++
	}
	fault := FaultNone
	if faultable && n.hook != nil {
		fault = n.hook.PacketFault(src, dst, payloadBytes, route, hopTimes)
		switch fault {
		case FaultDrop:
			n.Dropped++
		case FaultCorrupt:
			n.Corrupted++
		}
	}
	// Data packets stay registered while in flight so a link dying under
	// them can claim them retroactively (FailLink).
	var flightID int64
	if faultable {
		flightID = n.trackFlight(route)
	}
	// Tail arrives one packet-length after the head on the final hop.
	arrival := t + occ
	if len(route) == 0 {
		arrival = t + 1 // self-send: loopback in the shell
	}
	n.eng.At(arrival, func() {
		f := fault
		if flightID != 0 {
			if fl := n.flights[flightID]; fl != nil && fl.forced && f != FaultDrop {
				f = FaultDrop
				n.Dropped++
			}
			delete(n.flights, flightID)
		}
		deliver(f, marked)
	})
}

// LinkBacklog reports how many cycles of already-committed traffic a new
// packet arriving now would queue behind on the link leaving node in
// direction dir — the instantaneous congestion depth behind the marking
// decision.
func (n *Network) LinkBacklog(node, dir int) sim.Time {
	if b := n.links[node][dir].FreeAt() - n.eng.Now(); b > 0 {
		return b
	}
	return 0
}

// LinkBusy returns the accumulated occupancy of the link leaving node in
// direction dir (0..5: +x,-x,+y,-y,+z,-z).
func (n *Network) LinkBusy(node, dir int) sim.Time { return n.busy[node][dir] }

// HottestLink reports the most-occupied link and its accumulated busy
// time — the congestion diagnostic for the contention extensions.
func (n *Network) HottestLink() (node, dir int, busy sim.Time) {
	for nd := range n.busy {
		for d := 0; d < numDirs; d++ {
			if n.busy[nd][d] > busy {
				node, dir, busy = nd, d, n.busy[nd][d]
			}
		}
	}
	return node, dir, busy
}

// TotalLinkBusy sums occupancy over all links (aggregate traffic·time).
func (n *Network) TotalLinkBusy() sim.Time {
	var total sim.Time
	for nd := range n.busy {
		for d := 0; d < numDirs; d++ {
			total += n.busy[nd][d]
		}
	}
	return total
}
