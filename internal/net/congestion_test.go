package net

import (
	"testing"

	"repro/internal/sim"
)

// TestCongestionMarking: a burst of data packets crammed through one
// link picks up congestion-experienced marks once queueing passes the
// threshold, while a lone packet stays clean.
func TestCongestionMarking(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(8)
	cfg.MarkThreshold = 50
	n := New(eng, cfg)

	var marks, total int
	send := func() {
		n.SendDataEx(0, 1, 32, func(f Fault, marked bool) {
			total++
			if marked {
				marks++
			}
			if f != FaultNone {
				t.Errorf("unfaulted packet delivered %v", f)
			}
		})
	}
	send() // lone packet: no queueing, never marked
	eng.Run()
	if marks != 0 {
		t.Fatalf("lone packet was marked")
	}

	// 40 packets injected at the same instant serialize on the 0->1
	// link: occupancy is 1 + 4*2 = 9 cycles each, so queueing delay
	// crosses the 50-cycle threshold from roughly the 7th packet on.
	for i := 0; i < 40; i++ {
		send()
	}
	eng.Run()
	if marks < 20 {
		t.Errorf("burst produced %d marks of %d packets, want a clear majority", marks, total-1)
	}
	if n.MarkedPackets != int64(marks) {
		t.Errorf("MarkedPackets = %d, delivered marks = %d", n.MarkedPackets, marks)
	}
}

// TestMarkingDisabledAndControlPackets: a zero threshold never marks,
// and control packets (Send) never mark regardless of congestion.
func TestMarkingDisabledAndControlPackets(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(8)
	cfg.MarkThreshold = 0
	n := New(eng, cfg)
	for i := 0; i < 50; i++ {
		n.SendDataEx(0, 1, 64, func(f Fault, marked bool) {
			if marked {
				t.Error("marking disabled but packet arrived marked")
			}
		})
		n.Send(0, 1, 64, func() {})
	}
	eng.Run()
	if n.MarkedPackets != 0 {
		t.Errorf("MarkedPackets = %d with marking disabled", n.MarkedPackets)
	}
}

// TestLinkBacklog: committed occupancy shows up as backlog and an idle
// link reports zero.
func TestLinkBacklog(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig(8))
	if b := n.LinkBacklog(0, 0); b != 0 {
		t.Fatalf("idle link backlog = %d", b)
	}
	for i := 0; i < 10; i++ {
		n.SendData(0, 1, 64, func(Fault) {})
	}
	// Before the engine runs, all ten packets' occupancy is committed on
	// the +x link out of node 0 (dimension-order route 0 -> 1).
	if b := n.LinkBacklog(0, 0); b <= 0 {
		t.Fatalf("burst backlog = %d, want positive", b)
	}
	eng.Run()
}

// TestValidateMarkThreshold rejects a negative threshold.
func TestValidateMarkThreshold(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.MarkThreshold = -1
	if err := cfg.Validate(8); err == nil {
		t.Fatal("negative MarkThreshold validated")
	}
}
