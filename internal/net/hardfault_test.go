package net

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func degradedNet(t *testing.T, nodes int) *Network {
	t.Helper()
	return New(sim.NewEngine(), DefaultConfig(nodes))
}

// nextNode follows one hop: the node reached by leaving `node` in
// direction `dir` — an independent reimplementation of the torus
// geometry used to validate routes hop by hop.
func nextNode(n *Network, node, dir int) int {
	c := n.Coord(node)
	d := dir / 2
	size := n.Config().Shape[d]
	if dir&1 == 0 {
		c[d] = (c[d] + 1) % size
	} else {
		c[d] = (c[d] - 1 + size) % size
	}
	return n.Index(c)
}

// checkRoute walks a route hop by hop: every hop must leave the node the
// previous hop arrived at, must not cross a dead link, and the walk must
// end at dst.
func checkRoute(t *testing.T, n *Network, src, dst int, route [][2]int) {
	t.Helper()
	at := src
	for i, hop := range route {
		if hop[0] != at {
			t.Fatalf("route %d->%d hop %d leaves node %d, but packet is at %d", src, dst, i, hop[0], at)
		}
		if n.LinkDead(hop[0], hop[1]) {
			t.Fatalf("route %d->%d hop %d crosses dead link (%d,%d)", src, dst, i, hop[0], hop[1])
		}
		at = nextNode(n, hop[0], hop[1])
	}
	if at != dst {
		t.Fatalf("route %d->%d ends at node %d", src, dst, at)
	}
}

func TestRouteCacheReturnsSameSlice(t *testing.T) {
	// Satellite: per-send route allocation is gone. The cache must hand
	// back the identical slice on every lookup, with zero allocations on
	// the hot path.
	n := degradedNet(t, 8)
	r1, err := n.RouteErr(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := n.RouteErr(0, 7)
	if len(r1) > 0 && &r1[0] != &r2[0] {
		t.Error("second lookup returned a different slice: route not cached")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := n.RouteErr(0, 7); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached RouteErr allocates %.1f objects per call, want 0", allocs)
	}
}

func TestFailLinkInvalidatesRouteCache(t *testing.T) {
	n := degradedNet(t, 8) // 2x2x2
	route, err := n.RouteErr(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) == 0 {
		t.Fatal("adjacent pair has empty route")
	}
	// Kill the first link the cached route uses; the recomputed route
	// must avoid it and still arrive.
	n.FailLink(route[0][0], route[0][1])
	fresh, err := n.RouteErr(0, 1)
	if err != nil {
		t.Fatalf("reroute failed on a single dead link: %v", err)
	}
	checkRoute(t, n, 0, 1, fresh)
}

func TestFailLinkIdempotent(t *testing.T) {
	n := degradedNet(t, 8)
	n.FailLink(0, 0)
	n.FailLink(0, 0)
	if n.DeadLinks() != 1 {
		t.Errorf("DeadLinks = %d after double-failing one link, want 1", n.DeadLinks())
	}
	if !n.LinkDead(0, 0) {
		t.Error("LinkDead(0,0) = false after FailLink")
	}
}

func TestDegradedRoutesStayValidAllPairs(t *testing.T) {
	// Kill a handful of links on two shapes and verify every surviving
	// pair still gets a valid route (deflection or BFS fallback).
	for _, nodes := range []int{8, 12} { // 2x2x2 and 3x2x2
		n := degradedNet(t, nodes)
		n.FailLink(0, 0)
		n.FailLink(1, 2)
		n.FailLink(3, 1)
		for s := 0; s < nodes; s++ {
			for d := 0; d < nodes; d++ {
				route, err := n.RouteErr(s, d)
				if err != nil {
					// A partition is acceptable only if BFS really found
					// no path; with 3 dead links out of 3 per-node dims
					// these shapes stay connected.
					t.Fatalf("nodes=%d: %d->%d partitioned: %v", nodes, s, d, err)
				}
				checkRoute(t, n, s, d, route)
			}
		}
	}
}

func TestIsolatedNodeReturnsPartitionError(t *testing.T) {
	// Kill every outgoing link of node 0: no route can leave it. The
	// router must return an explicit *PartitionError — never hang.
	n := degradedNet(t, 8)
	for dir := 0; dir < 6; dir++ {
		n.FailLink(0, dir)
	}
	_, err := n.RouteErr(0, 7)
	if err == nil {
		t.Fatal("RouteErr found a route out of a fully isolated node")
	}
	var pe *PartitionError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PartitionError", err)
	}
	if pe.Src != 0 || pe.Dst != 7 {
		t.Errorf("PartitionError = %+v, want src 0 dst 7", pe)
	}
	if !errors.Is(err, ErrPartitioned) {
		t.Error("err does not unwrap to ErrPartitioned")
	}
	if !n.Partitioned() {
		t.Error("Partitioned() = false with an isolated node")
	}
	// The negative result is cached too: the second lookup must hit the
	// routeNone state and still error.
	if _, err2 := n.RouteErr(0, 7); err2 == nil {
		t.Error("cached lookup of a partitioned pair returned a route")
	}
	// Traffic INTO the isolated node still has no return path for acks,
	// but pure forwarding through other nodes is unaffected.
	if _, err := n.RouteErr(1, 7); err != nil {
		t.Errorf("unrelated pair 1->7 partitioned: %v", err)
	}
}

func TestReroutedStateCountsBrokenDimOrderPaths(t *testing.T) {
	// On a 2-ring the detour has equal length, so hop inflation cannot
	// detect rerouting; the semantic routeRerouted state must. Kill the
	// +x link out of node 0 on a 2x2x2 torus and route to its x-neighbor.
	n := degradedNet(t, 8)
	dim := n.dimOrderRoute(0, 1)
	if len(dim) != 1 {
		t.Fatalf("expected single-hop dim-order route 0->1, got %v", dim)
	}
	n.FailLink(dim[0][0], dim[0][1])
	if _, err := n.RouteErr(0, 1); err != nil {
		t.Fatalf("single dead link partitioned a 2-ring pair: %v", err)
	}
	if n.routeState[0*n.nodes+1] != routeRerouted {
		t.Errorf("route state = %d, want routeRerouted", n.routeState[0*n.nodes+1])
	}
	// A pair whose natural path avoids the dead link stays routeKnown.
	if _, err := n.RouteErr(2, 3); err != nil {
		t.Fatal(err)
	}
	if n.routeState[2*n.nodes+3] != routeKnown {
		t.Errorf("untouched pair state = %d, want routeKnown", n.routeState[2*n.nodes+3])
	}
}
