package net

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestShapeFor(t *testing.T) {
	cases := []struct {
		n    int
		want [3]int
	}{
		{1, [3]int{1, 1, 1}},
		{2, [3]int{2, 1, 1}},
		{8, [3]int{2, 2, 2}},
		{32, [3]int{4, 4, 2}},
		{2048, [3]int{16, 16, 8}},
	}
	for _, c := range cases {
		got := ShapeFor(c.n)
		if got[0]*got[1]*got[2] != c.n {
			t.Errorf("ShapeFor(%d) = %v, product != n", c.n, got)
		}
		if c.n <= 32 && got != c.want {
			// Exact shapes only asserted for the small, well-known cases.
			t.Errorf("ShapeFor(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestCoordIndexRoundTrip(t *testing.T) {
	n := New(sim.NewEngine(), DefaultConfig(32))
	for pe := 0; pe < n.Nodes(); pe++ {
		if got := n.Index(n.Coord(pe)); got != pe {
			t.Fatalf("Index(Coord(%d)) = %d", pe, got)
		}
	}
}

func TestAdjacentHopCount(t *testing.T) {
	n := New(sim.NewEngine(), DefaultConfig(8)) // 2x2x2
	if h := n.HopCount(0, 1); h != 1 {
		t.Errorf("adjacent hop count = %d, want 1", h)
	}
	if h := n.HopCount(0, 0); h != 0 {
		t.Errorf("self hop count = %d, want 0", h)
	}
	// Opposite corner of a 2x2x2 torus: 3 hops.
	if h := n.HopCount(0, 7); h != 3 {
		t.Errorf("corner-to-corner = %d, want 3", h)
	}
}

func TestTorusWraparound(t *testing.T) {
	// In a ring of 4, node 0 -> node 3 is 1 hop backwards, not 3 forwards.
	cfg := DefaultConfig(4)
	cfg.Shape = [3]int{4, 1, 1}
	n := New(sim.NewEngine(), cfg)
	if h := n.HopCount(0, 3); h != 1 {
		t.Errorf("wraparound hop count = %d, want 1", h)
	}
	if h := n.HopCount(0, 2); h != 2 {
		t.Errorf("half-ring hop count = %d, want 2", h)
	}
}

func TestDeliveryLatencyScalesWithHops(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Shape = [3]int{8, 1, 1}
	eng := sim.NewEngine()
	n := New(eng, cfg)
	times := map[int]sim.Time{}
	eng.Spawn("sender", func(p *sim.Proc) {
		for _, dst := range []int{1, 2, 3} {
			dst := dst
			n.Send(0, dst, 8, func() { times[dst] = eng.Now() })
		}
	})
	eng.Run()
	// Per extra hop the head pays HopLatency (2 cycles) once links are
	// otherwise idle... except these three packets share link 0->1 and
	// serialize there. Check monotonicity and per-hop increment using
	// fresh engines instead.
	for _, dst := range []int{1, 2, 3} {
		eng2 := sim.NewEngine()
		n2 := New(eng2, cfg)
		var at sim.Time
		eng2.Spawn("s", func(p *sim.Proc) {
			n2.Send(0, dst, 8, func() { at = eng2.Now() })
		})
		eng2.Run()
		occ := cfg.HeaderOcc + cfg.FlitOcc // 8-byte payload
		want := sim.Time(dst)*cfg.HopLatency + occ
		if at != want {
			t.Errorf("delivery to %d at %d, want %d", dst, at, want)
		}
	}
	_ = times
}

func TestLinkSerialization(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Shape = [3]int{2, 1, 1}
	eng := sim.NewEngine()
	n := New(eng, cfg)
	var arrivals []sim.Time
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			n.Send(0, 1, 8, func() { arrivals = append(arrivals, eng.Now()) })
		}
	})
	eng.Run()
	if len(arrivals) != 3 {
		t.Fatalf("got %d deliveries", len(arrivals))
	}
	occ := cfg.HeaderOcc + cfg.FlitOcc
	for i := 1; i < 3; i++ {
		if gap := arrivals[i] - arrivals[i-1]; gap != occ {
			t.Errorf("arrival gap = %d, want link occupancy %d", gap, occ)
		}
	}
}

func TestDisjointRoutesDoNotSerialize(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Shape = [3]int{4, 1, 1}
	eng := sim.NewEngine()
	n := New(eng, cfg)
	var a1, a2 sim.Time
	eng.Spawn("s", func(p *sim.Proc) {
		n.Send(0, 1, 8, func() { a1 = eng.Now() })
		n.Send(2, 3, 8, func() { a2 = eng.Now() })
	})
	eng.Run()
	if a1 != a2 {
		t.Errorf("disjoint sends arrived at %d and %d, want equal", a1, a2)
	}
}

func TestSelfSendDelivers(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig(8))
	delivered := false
	eng.Spawn("s", func(p *sim.Proc) {
		n.Send(3, 3, 8, func() { delivered = true })
	})
	eng.Run()
	if !delivered {
		t.Error("self-send never delivered")
	}
}

func TestPropertyRouteReachesDestination(t *testing.T) {
	n := New(sim.NewEngine(), DefaultConfig(32))
	f := func(a, b uint8) bool {
		src, dst := int(a)%32, int(b)%32
		cur := src
		for _, hop := range n.Route(src, dst) {
			if hop[0] != cur {
				return false // route must be contiguous
			}
			c := n.Coord(cur)
			dim, dir := hop[1]/2, hop[1]%2
			if dir == 0 {
				c[dim] = (c[dim] + 1) % n.Config().Shape[dim]
			} else {
				c[dim] = (c[dim] - 1 + n.Config().Shape[dim]) % n.Config().Shape[dim]
			}
			cur = n.Index(c)
		}
		return cur == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHopCountSymmetric(t *testing.T) {
	// Dimension-order routing on a torus with shortest-way choice gives
	// symmetric hop counts.
	n := New(sim.NewEngine(), DefaultConfig(32))
	f := func(a, b uint8) bool {
		src, dst := int(a)%32, int(b)%32
		return n.HopCount(src, dst) == n.HopCount(dst, src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHopCountBounded(t *testing.T) {
	n := New(sim.NewEngine(), DefaultConfig(64))
	s := n.Config().Shape
	maxHops := s[0]/2 + s[1]/2 + s[2]/2
	f := func(a, b uint16) bool {
		return n.HopCount(int(a)%64, int(b)%64) <= maxHops
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkBusyAccounting(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Shape = [3]int{2, 1, 1}
	eng := sim.NewEngine()
	n := New(eng, cfg)
	eng.Spawn("s", func(p *sim.Proc) {
		n.Send(0, 1, 8, func() {})
		n.Send(0, 1, 8, func() {})
	})
	eng.Run()
	occ := cfg.HeaderOcc + cfg.FlitOcc
	if got := n.LinkBusy(0, 0) + n.LinkBusy(0, 1); got != 2*occ {
		t.Errorf("link busy = %d, want %d", got, 2*occ)
	}
	node, _, busy := n.HottestLink()
	if node != 0 || busy != 2*occ {
		t.Errorf("hottest link = node %d busy %d", node, busy)
	}
	if n.TotalLinkBusy() != 2*occ {
		t.Errorf("total busy = %d", n.TotalLinkBusy())
	}
}
