package net

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestShapeFor(t *testing.T) {
	cases := []struct {
		n    int
		want [3]int
	}{
		{1, [3]int{1, 1, 1}},
		{2, [3]int{2, 1, 1}},
		{8, [3]int{2, 2, 2}},
		{32, [3]int{4, 4, 2}},
		{2048, [3]int{16, 16, 8}},
	}
	for _, c := range cases {
		got := ShapeFor(c.n)
		if got[0]*got[1]*got[2] != c.n {
			t.Errorf("ShapeFor(%d) = %v, product != n", c.n, got)
		}
		if c.n <= 32 && got != c.want {
			// Exact shapes only asserted for the small, well-known cases.
			t.Errorf("ShapeFor(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestCoordIndexRoundTrip(t *testing.T) {
	n := New(sim.NewEngine(), DefaultConfig(32))
	for pe := 0; pe < n.Nodes(); pe++ {
		if got := n.Index(n.Coord(pe)); got != pe {
			t.Fatalf("Index(Coord(%d)) = %d", pe, got)
		}
	}
}

func TestAdjacentHopCount(t *testing.T) {
	n := New(sim.NewEngine(), DefaultConfig(8)) // 2x2x2
	if h := n.HopCount(0, 1); h != 1 {
		t.Errorf("adjacent hop count = %d, want 1", h)
	}
	if h := n.HopCount(0, 0); h != 0 {
		t.Errorf("self hop count = %d, want 0", h)
	}
	// Opposite corner of a 2x2x2 torus: 3 hops.
	if h := n.HopCount(0, 7); h != 3 {
		t.Errorf("corner-to-corner = %d, want 3", h)
	}
}

func TestTorusWraparound(t *testing.T) {
	// In a ring of 4, node 0 -> node 3 is 1 hop backwards, not 3 forwards.
	cfg := DefaultConfig(4)
	cfg.Shape = [3]int{4, 1, 1}
	n := New(sim.NewEngine(), cfg)
	if h := n.HopCount(0, 3); h != 1 {
		t.Errorf("wraparound hop count = %d, want 1", h)
	}
	if h := n.HopCount(0, 2); h != 2 {
		t.Errorf("half-ring hop count = %d, want 2", h)
	}
}

func TestDeliveryLatencyScalesWithHops(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Shape = [3]int{8, 1, 1}
	eng := sim.NewEngine()
	n := New(eng, cfg)
	times := map[int]sim.Time{}
	eng.Spawn("sender", func(p *sim.Proc) {
		for _, dst := range []int{1, 2, 3} {
			dst := dst
			n.Send(0, dst, 8, func() { times[dst] = eng.Now() })
		}
	})
	eng.Run()
	// Per extra hop the head pays HopLatency (2 cycles) once links are
	// otherwise idle... except these three packets share link 0->1 and
	// serialize there. Check monotonicity and per-hop increment using
	// fresh engines instead.
	for _, dst := range []int{1, 2, 3} {
		eng2 := sim.NewEngine()
		n2 := New(eng2, cfg)
		var at sim.Time
		eng2.Spawn("s", func(p *sim.Proc) {
			n2.Send(0, dst, 8, func() { at = eng2.Now() })
		})
		eng2.Run()
		occ := cfg.HeaderOcc + cfg.FlitOcc // 8-byte payload
		want := sim.Time(dst)*cfg.HopLatency + occ
		if at != want {
			t.Errorf("delivery to %d at %d, want %d", dst, at, want)
		}
	}
	_ = times
}

func TestLinkSerialization(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Shape = [3]int{2, 1, 1}
	eng := sim.NewEngine()
	n := New(eng, cfg)
	var arrivals []sim.Time
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			n.Send(0, 1, 8, func() { arrivals = append(arrivals, eng.Now()) })
		}
	})
	eng.Run()
	if len(arrivals) != 3 {
		t.Fatalf("got %d deliveries", len(arrivals))
	}
	occ := cfg.HeaderOcc + cfg.FlitOcc
	for i := 1; i < 3; i++ {
		if gap := arrivals[i] - arrivals[i-1]; gap != occ {
			t.Errorf("arrival gap = %d, want link occupancy %d", gap, occ)
		}
	}
}

func TestDisjointRoutesDoNotSerialize(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Shape = [3]int{4, 1, 1}
	eng := sim.NewEngine()
	n := New(eng, cfg)
	var a1, a2 sim.Time
	eng.Spawn("s", func(p *sim.Proc) {
		n.Send(0, 1, 8, func() { a1 = eng.Now() })
		n.Send(2, 3, 8, func() { a2 = eng.Now() })
	})
	eng.Run()
	if a1 != a2 {
		t.Errorf("disjoint sends arrived at %d and %d, want equal", a1, a2)
	}
}

func TestSelfSendDelivers(t *testing.T) {
	eng := sim.NewEngine()
	n := New(eng, DefaultConfig(8))
	delivered := false
	eng.Spawn("s", func(p *sim.Proc) {
		n.Send(3, 3, 8, func() { delivered = true })
	})
	eng.Run()
	if !delivered {
		t.Error("self-send never delivered")
	}
}

func TestPropertyRouteReachesDestination(t *testing.T) {
	n := New(sim.NewEngine(), DefaultConfig(32))
	f := func(a, b uint8) bool {
		src, dst := int(a)%32, int(b)%32
		cur := src
		for _, hop := range n.Route(src, dst) {
			if hop[0] != cur {
				return false // route must be contiguous
			}
			c := n.Coord(cur)
			dim, dir := hop[1]/2, hop[1]%2
			if dir == 0 {
				c[dim] = (c[dim] + 1) % n.Config().Shape[dim]
			} else {
				c[dim] = (c[dim] - 1 + n.Config().Shape[dim]) % n.Config().Shape[dim]
			}
			cur = n.Index(c)
		}
		return cur == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHopCountSymmetric(t *testing.T) {
	// Dimension-order routing on a torus with shortest-way choice gives
	// symmetric hop counts.
	n := New(sim.NewEngine(), DefaultConfig(32))
	f := func(a, b uint8) bool {
		src, dst := int(a)%32, int(b)%32
		return n.HopCount(src, dst) == n.HopCount(dst, src)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHopCountBounded(t *testing.T) {
	n := New(sim.NewEngine(), DefaultConfig(64))
	s := n.Config().Shape
	maxHops := s[0]/2 + s[1]/2 + s[2]/2
	f := func(a, b uint16) bool {
		return n.HopCount(int(a)%64, int(b)%64) <= maxHops
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkBusyAccounting(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Shape = [3]int{2, 1, 1}
	eng := sim.NewEngine()
	n := New(eng, cfg)
	eng.Spawn("s", func(p *sim.Proc) {
		n.Send(0, 1, 8, func() {})
		n.Send(0, 1, 8, func() {})
	})
	eng.Run()
	occ := cfg.HeaderOcc + cfg.FlitOcc
	if got := n.LinkBusy(0, 0) + n.LinkBusy(0, 1); got != 2*occ {
		t.Errorf("link busy = %d, want %d", got, 2*occ)
	}
	node, _, busy := n.HottestLink()
	if node != 0 || busy != 2*occ {
		t.Errorf("hottest link = node %d busy %d", node, busy)
	}
	if n.TotalLinkBusy() != 2*occ {
		t.Errorf("total busy = %d", n.TotalLinkBusy())
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(8)
	if err := good.Validate(8); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.Shape = [3]int{2, 0, 2}
	if err := bad.Validate(0); err == nil {
		t.Error("zero shape dimension accepted")
	}
	bad = good
	bad.Shape = [3]int{-2, 2, 2}
	if err := bad.Validate(0); err == nil {
		t.Error("negative shape dimension accepted")
	}
	if err := good.Validate(9); err == nil {
		t.Error("node-count mismatch accepted")
	}
	bad = good
	bad.HopLatency = -1
	if err := bad.Validate(8); err == nil {
		t.Error("negative hop latency accepted")
	}
}

func TestNewCheckedRejectsBadShape(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Shape = [3]int{0, 2, 2}
	if _, err := NewChecked(sim.NewEngine(), cfg); err == nil {
		t.Error("NewChecked accepted a zero shape dimension")
	}
	if _, err := NewChecked(sim.NewEngine(), DefaultConfig(4)); err != nil {
		t.Errorf("NewChecked rejected a valid config: %v", err)
	}
}

func TestShapeForErr(t *testing.T) {
	if _, err := ShapeForErr(0); err == nil {
		t.Error("ShapeForErr(0) returned nil error")
	}
	if _, err := ShapeForErr(-3); err == nil {
		t.Error("ShapeForErr(-3) returned nil error")
	}
	s, err := ShapeForErr(12)
	if err != nil {
		t.Fatalf("ShapeForErr(12) = %v", err)
	}
	if s[0]*s[1]*s[2] != 12 {
		t.Errorf("shape %v does not multiply to 12", s)
	}
}

// dropAll is a FaultHook that drops every data packet and records what it
// was consulted about.
type dropAll struct {
	verdict Fault
	seen    int
	hops    int
}

func (d *dropAll) PacketFault(src, dst, payloadBytes int, route [][2]int, hopTimes []sim.Time) Fault {
	d.seen++
	d.hops = len(route)
	if len(hopTimes) != len(route) {
		panic("hopTimes/route length mismatch")
	}
	return d.verdict
}

func TestFaultHookDataVsControl(t *testing.T) {
	// The hook sees SendData packets but never Send (control) packets,
	// and the envelope still arrives on time either way.
	cfg := DefaultConfig(2)
	cfg.Shape = [3]int{2, 1, 1}
	eng := sim.NewEngine()
	n := New(eng, cfg)
	hook := &dropAll{verdict: FaultDrop}
	n.SetFaultHook(hook)
	var dataFault Fault = -1
	controlDelivered := false
	eng.Spawn("s", func(p *sim.Proc) {
		n.SendData(0, 1, 8, func(f Fault) { dataFault = f })
		n.Send(0, 1, 8, func() { controlDelivered = true })
	})
	eng.Run()
	if hook.seen != 1 {
		t.Errorf("hook consulted %d times, want 1 (data only)", hook.seen)
	}
	if hook.hops != 1 {
		t.Errorf("hook saw %d hops, want 1", hook.hops)
	}
	if dataFault != FaultDrop {
		t.Errorf("data verdict = %v, want drop", dataFault)
	}
	if !controlDelivered {
		t.Error("control packet not delivered")
	}
	if n.Dropped != 1 || n.Corrupted != 0 {
		t.Errorf("stats dropped=%d corrupted=%d, want 1, 0", n.Dropped, n.Corrupted)
	}
}

func TestFaultHookCorruptStat(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Shape = [3]int{2, 1, 1}
	eng := sim.NewEngine()
	n := New(eng, cfg)
	n.SetFaultHook(&dropAll{verdict: FaultCorrupt})
	got := FaultNone
	eng.Spawn("s", func(p *sim.Proc) {
		n.SendData(0, 1, 16, func(f Fault) { got = f })
	})
	eng.Run()
	if got != FaultCorrupt || n.Corrupted != 1 {
		t.Errorf("verdict=%v corrupted=%d, want corrupt, 1", got, n.Corrupted)
	}
}
