// Package cpu models the DEC Alpha 21064 processor core as the paper's
// micro-benchmarks see it: the issue costs of loads, stores, memory
// barriers and fetch hints, and the path each memory operation takes
// through the TLB, on-chip cache, write buffer, optional board-level L2,
// and DRAM.
//
// The same CPU model serves both machines of Figure 1: a T3D node (no L2,
// huge pages, a Remote port into the shell) and the DEC Alpha workstation
// (512 KB L2, 8 KB pages, no Remote port).
//
// The model is an instruction-cost model, not an ISA interpreter:
// simulated programs are Go code that calls Load64/Store64/MB/FetchHint
// and friends, each of which advances simulated time exactly as the real
// instruction sequence would. The paper's probes are written in assembly
// for the same reason — to measure hardware costs, not compiler overhead
// — and loop/address-arithmetic overhead is accounted separately with
// Compute (§2.1).
package cpu

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tlb"
	"repro/internal/wbuf"
)

// ClockMHz is the 21064 clock rate in the T3D: 150 MHz, 6.67 ns cycles.
const ClockMHz = 150

// NSPerCycle converts cycles to nanoseconds.
const NSPerCycle = 1e3 / ClockMHz

// Costs are the core issue costs in cycles.
type Costs struct {
	LoadHit    sim.Time // cache-hit load (throughput cost)
	StoreIssue sim.Time // store into the write buffer
	MBIssue    sim.Time // memory-barrier issue (plus the drain wait)
	FetchIssue sim.Time // fetch-hint (binding prefetch) issue
	OffChip    sim.Time // off-chip access: annex update, line flush
	L2Hit      sim.Time // board-cache hit (workstation only)
}

// DefaultCosts matches the paper's measurements: 1-cycle cache hits,
// ~3-cycle buffered stores (§2.3), 4-cycle MB and fetch issue (§5.2), and
// 23 cycles for anything that leaves the chip (§3.2, §4.4).
func DefaultCosts() Costs {
	return Costs{LoadHit: 1, StoreIssue: 3, MBIssue: 4, FetchIssue: 4, OffChip: 23, L2Hit: 8}
}

// Remote is the CPU's port into the T3D shell, nil on a workstation.
// Implementations live in package shell; the interface breaks the import
// cycle between core and shell.
type Remote interface {
	// Cached reports the function code of the annex entry selected by pa:
	// true for cached remote reads, false for uncached.
	Cached(pa int64) bool
	// ReadWord performs a blocking uncached remote read of size bytes
	// (4 or 8) at pa, advancing p through the full round trip.
	ReadWord(p *sim.Proc, pa int64, size int) uint64
	// ReadLine performs a blocking cached remote read, filling line
	// (one cache line) from the remote node.
	ReadLine(p *sim.Proc, pa int64, line []byte)
	// InjectEntry disposes of a drained write-buffer entry addressed to a
	// remote node (a remote write or a prefetch request), blocking p (the
	// drain proc) for the injection time.
	InjectEntry(p *sim.Proc, e *wbuf.Entry)
	// TakeStolen returns and clears cycles stolen from this CPU by
	// message-receive interrupts since the last call.
	TakeStolen() sim.Time
}

// CPU is one processor core with its memory hierarchy.
type CPU struct {
	Eng   *sim.Engine
	PE    int
	Costs Costs

	L1   *cache.Cache
	L2   *cache.Cache // nil on the T3D node
	TLB  *tlb.TLB
	WB   *wbuf.Buffer
	DRAM *mem.DRAM

	Remote Remote // nil on the workstation

	// Stats. ParityRefills counts loads that hit an L1 line with bad
	// parity and recovered by invalidate + refill from DRAM.
	Loads, Stores, RemoteLoads int64
	ParityRefills              int64
}

// chargeStolen applies any interrupt time stolen from this CPU at the next
// instruction boundary.
func (c *CPU) chargeStolen(p *sim.Proc) {
	if c.Remote == nil {
		return
	}
	if d := c.Remote.TakeStolen(); d > 0 {
		p.Wait(d)
	}
}

// Compute charges n cycles of local computation (register arithmetic,
// byte-manipulation instructions, branches).
func (c *CPU) Compute(p *sim.Proc, n sim.Time) {
	c.chargeStolen(p)
	p.Wait(n)
}

// ExtractByte models the Alpha EXTBL instruction: byte n of register
// value v, one cycle. The 21064 has no byte loads, so sub-word data is
// always handled with these register operations (§4.5).
func (c *CPU) ExtractByte(p *sim.Proc, v uint64, n uint) byte {
	if n > 7 {
		panic("cpu: byte index out of range")
	}
	c.Compute(p, 1)
	return byte(v >> (8 * n))
}

// InsertByte models the MSKBL/INSBL/BIS sequence: replace byte n of v
// with b, three single-cycle register operations.
func (c *CPU) InsertByte(p *sim.Proc, v uint64, n uint, b byte) uint64 {
	if n > 7 {
		panic("cpu: byte index out of range")
	}
	c.Compute(p, 3)
	return v&^(uint64(0xFF)<<(8*n)) | uint64(b)<<(8*n)
}

// Load64 performs a longword load. Remote addresses (annex index != 0) go
// through the shell using the cached or uncached path selected by the
// annex entry's function code.
func (c *CPU) Load64(p *sim.Proc, va int64) uint64 { return c.load(p, va, 8) }

// Load32 performs a word load.
func (c *CPU) Load32(p *sim.Proc, va int64) uint64 { return c.load(p, va, 4) }

//t3d:hotpath
func (c *CPU) load(p *sim.Proc, va int64, size int) uint64 {
	c.chargeStolen(p)
	c.Loads++
	if va%int64(size) != 0 {
		//lint:allow hotalloc unaligned-access misuse panic; aligned steady-state loads never format
		panic(fmt.Sprintf("cpu: unaligned %d-byte load at %#x", size, va))
	}
	pa := va // identity translation; the TLB charges time only
	if pen := c.TLB.Lookup(va); pen > 0 {
		p.Wait(pen)
	}
	if c.Remote != nil && !addr.IsLocal(pa) {
		//lint:allow hotalloc the remote path allocates only per-miss line staging and a conflict-stall wait; steady cached hits are allocation-free
		return c.loadRemote(p, pa, size)
	}
	//lint:allow hotalloc the local path allocates only per-miss line staging and the poison-trap error; per-hit loads are allocation-free
	return c.loadLocal(p, addr.Offset(pa), pa, size)
}

// loadLocal walks the L1 / (L2) / DRAM path. off is the DRAM offset, pa
// the full physical address used for cache tags and conflict checks.
func (c *CPU) loadLocal(p *sim.Proc, off, pa int64, size int) uint64 {
	v, pAddr := c.loadLocalChecked(p, off, pa, size)
	if pAddr >= 0 {
		panic(&mem.PoisonError{PE: c.PE, Addr: pAddr})
	}
	return v
}

// loadLocalChecked is loadLocal reporting poison as an address (-1 when
// the data is clean) instead of panicking — the primitive under both
// the trapping loads and Load64Checked.
func (c *CPU) loadLocalChecked(p *sim.Proc, off, pa int64, size int) (uint64, int64) {
	// Word-sized staging on the stack: per-access heap traffic on the
	// load path would dominate the simulated costs being measured.
	var wordBuf [8]byte
	buf := wordBuf[:size]
	if c.L1.Lookup(pa) {
		if c.L1.ParityBad(pa) {
			// Parity error on the hit: detected, never consumed. Drop
			// the line and replay the load as a miss — the cache is
			// write-through, so DRAM still holds the truth.
			c.ParityRefills++
			c.L1.Invalidate(pa)
		} else {
			// Latch the data before advancing time: an invalidate
			// landing during the hit cycle does not affect a load
			// already in flight.
			c.L1.ReadData(pa, buf)
			p.Wait(c.Costs.LoadHit)
			return word(buf), -1
		}
	}
	// Miss: the 21064 stalls a load that conflicts with a pending write
	// buffer entry (exact physical line match only — synonyms escape).
	c.WB.WaitNoConflict(p, pa)
	line := make([]byte, c.L1.Config().LineSize)
	lineAddr := c.L1.LineAddr(pa)
	lineOff := c.L1.LineAddr(off)
	if c.L2 != nil {
		if c.L2.Lookup(lineAddr) {
			p.Wait(c.Costs.L2Hit)
			c.L2.ReadData(lineAddr, line)
			c.L1.Fill(lineAddr, line)
			c.L1.ReadData(pa, buf)
			return word(buf), -1
		}
	}
	complete, _ := c.DRAM.ReadAccess(p.Now(), lineOff)
	p.WaitUntil(complete)
	corrected, poisoned := c.DRAM.ReadChecked(lineOff, line)
	if corrected > 0 {
		p.Wait(c.DRAM.Config().ECCPenalty * sim.Time(corrected))
	}
	if len(poisoned) > 0 {
		// Never install a poisoned line: the fill aborts and the
		// poison is reported against the first bad word.
		return 0, poisoned[0]
	}
	if c.L2 != nil {
		c.L2.Fill(lineAddr, line)
	}
	c.L1.Fill(lineAddr, line)
	c.L1.ReadData(pa, buf)
	return word(buf), -1
}

func (c *CPU) loadRemote(p *sim.Proc, pa int64, size int) uint64 {
	c.RemoteLoads++
	if !c.Remote.Cached(pa) {
		c.WB.WaitNoConflict(p, pa)
		return c.Remote.ReadWord(p, pa, size)
	}
	// Cached remote read: hits in the local L1 (that is what makes the
	// mechanism attractive and incoherent at once, §4.4).
	var wordBuf [8]byte
	buf := wordBuf[:size]
	if c.L1.Lookup(pa) {
		if c.L1.ParityBad(pa) {
			c.ParityRefills++
			c.L1.Invalidate(pa)
		} else {
			c.L1.ReadData(pa, buf)
			p.Wait(c.Costs.LoadHit)
			return word(buf)
		}
	}
	c.WB.WaitNoConflict(p, pa)
	line := make([]byte, c.L1.Config().LineSize)
	lineAddr := c.L1.LineAddr(pa)
	c.Remote.ReadLine(p, lineAddr, line)
	c.L1.Fill(lineAddr, line)
	c.L1.ReadData(pa, buf)
	return word(buf)
}

// Load64Checked is Load64 for receivers that must not trap on poison
// (the reliable active-message poll path): a local load returns
// (value, poisoned) instead of panicking with *mem.PoisonError, so the
// protocol can drop the message and let retransmission overwrite the
// bad word. Remote addresses take the ordinary trapping path — the AM
// queues this exists for live in local memory.
func (c *CPU) Load64Checked(p *sim.Proc, va int64) (uint64, bool) {
	c.chargeStolen(p)
	c.Loads++
	if va%8 != 0 {
		panic(fmt.Sprintf("cpu: unaligned 8-byte load at %#x", va))
	}
	pa := va // identity translation; the TLB charges time only
	if pen := c.TLB.Lookup(va); pen > 0 {
		p.Wait(pen)
	}
	if c.Remote != nil && !addr.IsLocal(pa) {
		return c.loadRemote(p, pa, 8), false
	}
	v, pAddr := c.loadLocalChecked(p, addr.Offset(pa), pa, 8)
	return v, pAddr >= 0
}

// Store64 performs a longword store through the write buffer.
func (c *CPU) Store64(p *sim.Proc, va int64, v uint64) { c.store(p, va, v, 8) }

// Store32 performs a word store. The Alpha has no byte or halfword
// stores; shared sub-word data needs a read-modify-write sequence, with
// the multiprocessor consequences of §4.5.
func (c *CPU) Store32(p *sim.Proc, va int64, v uint64) { c.store(p, va, v, 4) }

//t3d:hotpath
func (c *CPU) store(p *sim.Proc, va int64, v uint64, size int) {
	c.chargeStolen(p)
	c.Stores++
	if va%int64(size) != 0 {
		//lint:allow hotalloc unaligned-access misuse panic; aligned steady-state stores never format
		panic(fmt.Sprintf("cpu: unaligned %d-byte store at %#x", size, va))
	}
	pa := va
	if pen := c.TLB.Lookup(va); pen > 0 {
		p.Wait(pen)
	}
	p.Wait(c.Costs.StoreIssue)
	//lint:allow hotalloc per-store staging copy retained by the write buffer until drain; buffer pooling is the ROADMAP item-1 follow-up
	data := make([]byte, size)
	putWord(data, v)
	// Write-through: update a resident line (local or cached-remote).
	c.L1.WriteData(pa, data)
	if c.L2 != nil {
		c.L2.WriteData(pa, data)
	}
	c.WB.PushWrite(p, pa, data)
}

// MB issues a memory barrier: 4 cycles plus a stall until the write
// buffer (writes and prefetch requests alike) has drained into the
// memory system or shell.
func (c *CPU) MB(p *sim.Proc) {
	c.chargeStolen(p)
	p.Wait(c.Costs.MBIssue)
	c.WB.WaitEmpty(p)
}

// FetchHint issues the Alpha fetch instruction for va. On the T3D the
// shell interprets it as a binding prefetch into the off-chip prefetch
// FIFO (§5.2); the request travels through the write buffer.
func (c *CPU) FetchHint(p *sim.Proc, va int64) {
	c.chargeStolen(p)
	p.Wait(c.Costs.FetchIssue)
	c.WB.PushFetch(p, va)
}

// FlushLine flushes the cache line containing va: an off-chip operation
// costing 23 cycles (§4.4). The cache is write-through, so no data moves.
func (c *CPU) FlushLine(p *sim.Proc, va int64) {
	c.chargeStolen(p)
	p.Wait(c.Costs.OffChip)
	c.L1.Invalidate(va)
}

// FlushCache empties the whole data cache (the batched flush used by bulk
// cached reads past 8 KB, §6.2). Charged as one off-chip operation per
// resident line set in bulk: the hardware sweep is proportional to cache
// size, modeled as OffChip + 1 cycle per line.
func (c *CPU) FlushCache(p *sim.Proc) {
	c.chargeStolen(p)
	lines := c.L1.Config().Size / c.L1.Config().LineSize
	p.Wait(c.Costs.OffChip + sim.Time(lines))
	c.L1.InvalidateAll()
}

// Drain implements wbuf.Sink: it disposes of one drained entry, routing
// local writes to DRAM and remote traffic to the shell. p is the write
// buffer's drain proc, not the CPU's thread.
func (c *CPU) Drain(p *sim.Proc, e *wbuf.Entry) {
	if c.Remote != nil && !addr.IsLocal(e.LineAddr) {
		c.Remote.InjectEntry(p, e)
		return
	}
	if e.Kind == wbuf.KindFetch {
		// A fetch hint for a local address: serviced from local memory
		// into the prefetch queue via the shell's loopback.
		if c.Remote != nil {
			c.Remote.InjectEntry(p, e)
			return
		}
		// Workstation: the 21064 fetch instruction is a no-op hint.
		return
	}
	off := addr.Offset(e.LineAddr)
	complete, _ := c.DRAM.WriteAccess(p.Now(), off)
	p.WaitUntil(complete)
	e.Bytes(func(a int64, v byte) {
		c.DRAM.Write(addr.Offset(a), []byte{v})
	})
}

func word(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putWord(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v)
		v >>= 8
	}
}
