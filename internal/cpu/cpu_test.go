package cpu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tlb"
	"repro/internal/wbuf"
)

// newLocalCPU builds a T3D-style CPU with no shell (all addresses local).
func newLocalCPU(eng *sim.Engine) *CPU {
	c := &CPU{
		Eng:   eng,
		Costs: DefaultCosts(),
		L1:    cache.New(cache.T3DL1Config()),
		TLB:   tlb.New(tlb.T3DConfig()),
		DRAM:  mem.New(mem.T3DNodeConfig(1 << 20)),
	}
	wb := wbuf.New(eng, 4, c)
	c.WB = wb
	wb.Start("wbuf")
	return c
}

// newWSCPU builds the workstation hierarchy (L1 + L2, small pages).
func newWSCPU(eng *sim.Engine) *CPU {
	c := &CPU{
		Eng:   eng,
		Costs: DefaultCosts(),
		L1:    cache.New(cache.T3DL1Config()),
		L2:    cache.New(cache.WorkstationL2Config()),
		TLB:   tlb.New(tlb.WorkstationConfig()),
		DRAM:  mem.New(mem.WorkstationConfig(4 << 20)),
	}
	wb := wbuf.New(eng, 4, c)
	c.WB = wb
	wb.Start("wbuf")
	return c
}

func runCPU(t *testing.T, mk func(*sim.Engine) *CPU, body func(p *sim.Proc, c *CPU)) {
	t.Helper()
	eng := sim.NewEngine()
	c := mk(eng)
	eng.Spawn("cpu", func(p *sim.Proc) { body(p, c) })
	eng.Run()
}

func TestStoreThenLoadRoundTrip(t *testing.T) {
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		c.Store64(p, 0x100, 0xCAFE)
		if v := c.Load64(p, 0x100); v != 0xCAFE {
			t.Errorf("load = %#x", v)
		}
	})
}

func TestLoad32Store32(t *testing.T) {
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		c.Store64(p, 0x200, 0x1111222233334444)
		c.MB(p)
		if v := c.Load32(p, 0x200); v != 0x33334444 {
			t.Errorf("low word = %#x", v)
		}
		if v := c.Load32(p, 0x204); v != 0x11112222 {
			t.Errorf("high word = %#x", v)
		}
		c.Store32(p, 0x200, 0xAAAA)
		c.MB(p)
		if v := c.Load64(p, 0x200); v != 0x111122220000AAAA {
			t.Errorf("word after 32-bit store = %#x", v)
		}
	})
}

func TestUnalignedAccessPanics(t *testing.T) {
	for _, f := range []func(p *sim.Proc, c *CPU){
		func(p *sim.Proc, c *CPU) { c.Load64(p, 0x101) },
		func(p *sim.Proc, c *CPU) { c.Store64(p, 0x104, 0) },
		func(p *sim.Proc, c *CPU) { c.Load32(p, 0x102) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("unaligned access did not panic")
				}
			}()
			runCPU(t, newLocalCPU, f)
		}()
	}
}

func TestLoadMissFillsLine(t *testing.T) {
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		c.DRAM.Write64(0x300, 7)
		c.DRAM.Write64(0x318, 9) // same 32 B line
		start := p.Now()
		if v := c.Load64(p, 0x300); v != 7 {
			t.Errorf("miss load = %d", v)
		}
		missCost := p.Now() - start
		start = p.Now()
		if v := c.Load64(p, 0x318); v != 9 {
			t.Errorf("line-mate load = %d", v)
		}
		hitCost := p.Now() - start
		if hitCost != c.Costs.LoadHit {
			t.Errorf("line-mate cost = %d, want hit cost %d", hitCost, c.Costs.LoadHit)
		}
		if missCost < 20 {
			t.Errorf("miss cost = %d, suspiciously cheap", missCost)
		}
	})
}

func TestWriteThroughUpdatesCacheAndMemory(t *testing.T) {
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		c.Load64(p, 0x400) // allocate the line
		c.Store64(p, 0x400, 42)
		// Cache sees the store immediately (write-through hit).
		if v := c.Load64(p, 0x400); v != 42 {
			t.Errorf("cached value = %d", v)
		}
		c.MB(p)
		if v := c.DRAM.Read64(0x400); v != 42 {
			t.Errorf("memory after drain = %d", v)
		}
	})
}

func TestLoadStallsOnConflictingBufferedWrite(t *testing.T) {
	// A load miss to a line with a pending write entry waits for the
	// drain and then observes the new value.
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		c.Store64(p, 0x500, 13) // not cached: write goes to buffer only
		if v := c.Load64(p, 0x500); v != 13 {
			t.Errorf("load after store = %d, want 13", v)
		}
	})
}

func TestMBWaitsForDrain(t *testing.T) {
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		for i := int64(0); i < 4; i++ {
			c.Store64(p, 0x600+i*64, 1)
		}
		if c.WB.Empty() {
			t.Fatal("buffer drained instantly; premise broken")
		}
		c.MB(p)
		if !c.WB.Empty() {
			t.Error("MB returned with entries still buffered")
		}
	})
}

func TestFlushLineDropsCachedCopy(t *testing.T) {
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		c.DRAM.Write64(0x700, 1)
		c.Load64(p, 0x700)
		c.DRAM.Write64(0x700, 2) // change memory under the cache
		if v := c.Load64(p, 0x700); v != 1 {
			t.Fatalf("expected stale cached 1, got %d", v)
		}
		start := p.Now()
		c.FlushLine(p, 0x700)
		if d := p.Now() - start; d != c.Costs.OffChip {
			t.Errorf("flush cost = %d, want %d", d, c.Costs.OffChip)
		}
		if v := c.Load64(p, 0x700); v != 2 {
			t.Errorf("post-flush load = %d, want 2", v)
		}
	})
}

func TestFlushCacheEmptiesL1(t *testing.T) {
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		for i := int64(0); i < 32; i++ {
			c.Load64(p, i*32)
		}
		c.FlushCache(p)
		if n := c.L1.ResidentLines(); n != 0 {
			t.Errorf("%d lines resident after FlushCache", n)
		}
	})
}

func TestWorkstationL2Path(t *testing.T) {
	runCPU(t, newWSCPU, func(p *sim.Proc, c *CPU) {
		c.DRAM.Write64(0x800, 5)
		c.Load64(p, 0x800) // memory -> L2 + L1
		// Evict from L1 with a conflicting line one L1-size away.
		c.Load64(p, 0x800+8<<10)
		start := p.Now()
		if v := c.Load64(p, 0x800); v != 5 {
			t.Errorf("L2 load = %d", v)
		}
		cost := p.Now() - start
		if cost != c.Costs.L2Hit {
			t.Errorf("L2 hit cost = %d, want %d", cost, c.Costs.L2Hit)
		}
	})
}

func TestWorkstationTLBChargesMisses(t *testing.T) {
	runCPU(t, newWSCPU, func(p *sim.Proc, c *CPU) {
		pageSize := c.TLB.Config().PageSize
		c.Load64(p, 0)
		hits, misses := c.TLB.Hits, c.TLB.Misses
		c.Load64(p, 8)        // same page
		c.Load64(p, pageSize) // new page
		if c.TLB.Hits != hits+1 || c.TLB.Misses != misses+1 {
			t.Errorf("TLB hits/misses = %d/%d", c.TLB.Hits-hits, c.TLB.Misses-misses)
		}
	})
}

func TestFetchHintIsNoOpWithoutShell(t *testing.T) {
	// On the workstation the Alpha fetch instruction is only a hint; the
	// drain must discard it rather than panic.
	runCPU(t, newWSCPU, func(p *sim.Proc, c *CPU) {
		c.FetchHint(p, 0x100)
		c.MB(p)
	})
}

func TestComputeAdvancesTime(t *testing.T) {
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		start := p.Now()
		c.Compute(p, 17)
		if d := p.Now() - start; d != 17 {
			t.Errorf("Compute(17) advanced %d", d)
		}
	})
}

func TestStatsCounters(t *testing.T) {
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		c.Load64(p, 0)
		c.Load64(p, 8)
		c.Store64(p, 16, 1)
		if c.Loads != 2 || c.Stores != 1 {
			t.Errorf("Loads=%d Stores=%d", c.Loads, c.Stores)
		}
	})
}

func TestWordHelpers(t *testing.T) {
	b := make([]byte, 8)
	putWord(b, 0x0102030405060708)
	if b[0] != 0x08 || b[7] != 0x01 {
		t.Errorf("putWord little-endian violated: %v", b)
	}
	if v := word(b); v != 0x0102030405060708 {
		t.Errorf("word = %#x", v)
	}
	b4 := make([]byte, 4)
	putWord(b4, 0xAABBCCDD)
	if v := word(b4); v != 0xAABBCCDD {
		t.Errorf("4-byte word = %#x", v)
	}
}

func TestByteManipulation(t *testing.T) {
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		v := uint64(0x1122334455667788)
		if b := c.ExtractByte(p, v, 0); b != 0x88 {
			t.Errorf("ExtractByte(0) = %#x", b)
		}
		if b := c.ExtractByte(p, v, 7); b != 0x11 {
			t.Errorf("ExtractByte(7) = %#x", b)
		}
		w := c.InsertByte(p, v, 2, 0xAB)
		if w != 0x1122334455AB7788 {
			t.Errorf("InsertByte = %#x", w)
		}
		start := p.Now()
		c.ExtractByte(p, v, 1)
		c.InsertByte(p, v, 1, 0)
		if d := p.Now() - start; d != 4 { // 1 + 3 cycles
			t.Errorf("byte ops cost %d cycles, want 4", d)
		}
	})
}

func TestByteIndexRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("byte index 8 did not panic")
		}
	}()
	runCPU(t, newLocalCPU, func(p *sim.Proc, c *CPU) {
		c.ExtractByte(p, 0, 8)
	})
}
