package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
)

// TestSuppressionPolicy runs the full pipeline (RunPackages, the same
// entry point t3dlint uses) over the fixallow fixture and checks both
// directions of the policy's teeth: a justified //lint:allow silences
// its finding, while stale and malformed allows become findings.
func TestSuppressionPolicy(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := analysis.NewOverlayLoader(root)
	findings, err := analysis.RunPackages(l, []string{"repro/internal/fixallow"},
		[]*analysis.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range findings {
		if d.Pass == "determinism" {
			t.Errorf("waived finding survived suppression: %s", d)
		}
	}
	wantSubstrings := []string{
		"unused //lint:allow determinism",
		"has no reason",
		"unknown pass nosuchpass",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range findings {
			if d.Pass == "suppress" && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no suppress finding containing %q; got %v", want, findings)
		}
	}
	if len(findings) != len(wantSubstrings) {
		t.Errorf("got %d findings, want %d: %v", len(findings), len(wantSubstrings), findings)
	}
}
