// Package analysistest runs one analyzer over a golden fixture package
// and checks its raw diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// Fixtures live in a GOPATH-style tree (testdata/src/<import path>/),
// and import stub versions of the real module packages — same import
// paths, skeletal bodies — so the tests exercise exactly the type-based
// matching the passes do on the real tree while staying hermetic.
//
// Expectations are written on the offending line:
//
//	c.Get(dst, g) // want `not settled`
//
// Each backquoted string is a regexp; a line must produce exactly as
// many diagnostics as it has want patterns, and every diagnostic must
// match one of them. Files without want comments double as
// no-false-positive fixtures: any diagnostic in them fails the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture package at importPath from srcRoot, applies the
// analyzer, and reports mismatches against // want expectations.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, importPath string) {
	t.Helper()
	l := analysis.NewOverlayLoader(srcRoot)
	pkg, err := l.Load(importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	diags, err := analysis.RunPackage(l, pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s over %s: %v", a.Name, importPath, err)
	}
	if a.RunModule != nil {
		// Module-level analyzers see the fixture package plus its stub
		// imports, with findings restricted to the fixture itself —
		// a stub that triggered a diagnostic would fail the test as an
		// unexpected position anyway.
		modDiags, _, err := analysis.RunModuleAnalyzers(l, []string{importPath}, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s over fixture module %s: %v", a.Name, importPath, err)
		}
		diags = append(diags, modDiags...)
	}

	wants := collectWants(t, l, pkg)

	// Group diagnostics by file:line and match against expectations.
	unmatched := map[string][]analysis.Diagnostic{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		unmatched[key] = append(unmatched[key], d)
	}
	for key, ws := range wants {
		got := unmatched[key]
		for _, w := range ws {
			idx := -1
			for i, d := range got {
				if w.re.MatchString(d.Message) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s: no %s diagnostic matching %q (got %d on this line)", key, a.Name, w.pattern, len(got))
				continue
			}
			got = append(got[:idx], got[idx+1:]...)
		}
		if len(got) == 0 {
			delete(unmatched, key)
		} else {
			unmatched[key] = got
		}
	}
	for _, ds := range unmatched {
		for _, d := range ds {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

type want struct {
	pattern string
	re      *regexp.Regexp
}

// collectWants parses // want `re` `re` comments from the fixture
// files, keyed by file:line.
func collectWants(t *testing.T, l *analysis.Loader, pkg *analysis.Package) map[string][]want {
	t.Helper()
	wants := map[string][]want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range splitPatterns(text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], want{pattern: pat, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns extracts the backquoted regexps from a want comment.
func splitPatterns(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '`')
		if i < 0 {
			return out
		}
		s = s[i+1:]
		j := strings.IndexByte(s, '`')
		if j < 0 {
			return out
		}
		out = append(out, s[:j])
		s = s[j+1:]
	}
}
