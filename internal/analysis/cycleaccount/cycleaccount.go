// Package cycleaccount enforces the simulated-time contract: a function
// that receives a *sim.Proc is executing on a simulated processor, and
// every cost it incurs must be charged in simulated cycles (p.Compute,
// shell waits, sim deadlines) — never in host time. The event kernel
// hands a single execution token between proc goroutines, so a proc
// function that sleeps, reads the wall clock, or blocks on an OS
// primitive either stalls the whole simulation or smuggles host-machine
// timing into results that must be bit-identical across runs.
//
// Within any function whose receiver or parameters include *sim.Proc
// (or sim.Proc), the pass flags:
//
//   - time.Sleep and wall-clock reads (time.Now, Since, Until, After,
//     Tick, NewTimer, NewTicker, AfterFunc);
//   - blocking sync primitives: (*sync.WaitGroup).Wait,
//     (*sync.Mutex).Lock, (*sync.RWMutex).Lock/RLock, (*sync.Cond).Wait;
//   - channel operations (send, receive, select, range over a channel):
//     only the scheduler may park a goroutine;
//   - spawning processes via os/exec.
//
// Nested function literals are judged by their own signatures: a
// closure without a *sim.Proc parameter handed to the engine or a test
// harness is outside this contract. repro/internal/sim itself is
// exempt — the engine implements the token handoff with exactly these
// primitives.
package cycleaccount

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the cycleaccount pass.
var Analyzer = &analysis.Analyzer{
	Name: "cycleaccount",
	Doc:  "functions taking *sim.Proc run on simulated time: no sleeping, wall-clock, OS blocking, or channel operations",
	Run:  run,
}

const simPath = "repro/internal/sim"

func run(pass *analysis.Pass) error {
	if pass.Path == simPath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && takesProc(pass, n.Recv, n.Type) {
					checkBody(pass, n.Body)
				}
			case *ast.FuncLit:
				if takesProc(pass, nil, n.Type) {
					checkBody(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil
}

// takesProc reports whether the function signature includes a
// (pointer-to-)sim.Proc receiver or parameter.
func takesProc(pass *analysis.Pass, recv *ast.FieldList, ft *ast.FuncType) bool {
	lists := []*ast.FieldList{recv, ft.Params}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			if isProcType(pass.TypesInfo.TypeOf(field.Type)) {
				return true
			}
		}
	}
	return false
}

func isProcType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == simPath && named.Obj().Name() == "Proc"
}

// checkBody walks one proc function body, skipping nested literals
// (each is judged by its own signature at the FuncLit case above).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.SendStmt:
			pass.ReportClassf(n.Pos(), "chan-op", "channel send in a *sim.Proc function — only the sim scheduler may park a goroutine; use signals/deadlines on the proc")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.ReportClassf(n.Pos(), "chan-op", "channel receive in a *sim.Proc function — only the sim scheduler may park a goroutine; use p.WaitSignal or shell waits")
			}
		case *ast.SelectStmt:
			pass.ReportClassf(n.Pos(), "chan-op", "select in a *sim.Proc function — only the sim scheduler may park a goroutine")
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.ReportClassf(n.Pos(), "chan-op", "range over a channel in a *sim.Proc function — only the sim scheduler may park a goroutine")
				}
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return
	}
	if analysis.IsPkgFunc(fn, "time", "Sleep") {
		pass.ReportClassf(call.Pos(), "host-sleep", "time.Sleep in a *sim.Proc function — host sleep stalls the event kernel; charge simulated cycles with p.Compute")
		return
	}
	if analysis.IsPkgFunc(fn, "time", "Now", "Since", "Until", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc") {
		pass.ReportClassf(call.Pos(), "wall-clock", "wall-clock time.%s in a *sim.Proc function — simulated time is p.Now(); host time breaks bit-identical replay", fn.Name())
		return
	}
	if analysis.IsPkgFunc(fn, "os/exec") {
		pass.ReportClassf(call.Pos(), "os-exec", "os/exec in a *sim.Proc function — spawning processes is unbounded host-time work")
		return
	}
	if pkg, tn := analysis.ReceiverNamed(fn); pkg == "sync" {
		blocking := (fn.Name() == "Wait" && (tn == "WaitGroup" || tn == "Cond")) ||
			(fn.Name() == "Lock" && (tn == "Mutex" || tn == "RWMutex")) ||
			(fn.Name() == "RLock" && tn == "RWMutex")
		if blocking {
			pass.ReportClassf(call.Pos(), "sync-block", "(*sync.%s).%s in a *sim.Proc function — OS blocking bypasses simulated time; use sim resources/signals", tn, fn.Name())
		}
	}
}
