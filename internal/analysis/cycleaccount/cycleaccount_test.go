package cycleaccount_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cycleaccount"
)

// TestGolden checks every violation kind against bad.go and the
// blessed real-tree patterns in ok.go (which must stay silent).
func TestGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, root, cycleaccount.Analyzer, "repro/internal/fixcyc")
}
