package hotalloc_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotalloc"
)

func fixtures(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestGolden checks every allocation class against bad.go — including
// the interprocedural calls-allocating cases, where the allocation is
// one or two unannotated calls away — and the allocation-free mirrors
// in ok.go (value composites, pointer-shaped boxing, annotated-callee
// boundaries), which must stay silent.
func TestGolden(t *testing.T) {
	analysistest.Run(t, fixtures(t), hotalloc.Analyzer, "repro/internal/fixhot")
}
