// Package hotalloc keeps the measured hot paths allocation-free.
//
// The bench suite (bench_test.go) pins allocs/op on four paths — the
// event-heap push/pop kernel, the shell remote-load data path, torus
// route lookup, and AM dispatch — and the ROADMAP item-1 target (10×
// events/sec) dies by a thousand heap cuts: one escaping composite per
// event, one interface box per trace call, one closure per wait. A
// function on such a path carries a //t3d:hotpath annotation in its doc
// comment, and this pass enforces the contract the annotation declares:
// nothing in the function's body — nor in any helper it calls, up to
// the next annotated boundary — may allocate.
//
// Flagged in an annotated function (function literals inside one
// inherit the annotation — a closure runs on the same path):
//
//   - escape-composite: &T{...} (heap-allocated unless escape analysis
//     rescues it), and slice/map composite literals;
//   - make / new: explicit allocation;
//   - append: may grow; amortized-growth appends (a route cache, the
//     event heap's own backing array) carry a //lint:allow hotalloc
//     comment arguing the amortization;
//   - closure: a function literal capturing variables (the closure
//     header and its captures are heap-allocated);
//   - string-conv: string<->[]byte/[]rune conversions and string
//     concatenation;
//   - iface-box: a concrete non-pointer-shaped value (int, struct,
//     string, slice) passed where an interface is expected — the
//     canonical hidden allocation of a ...any trace call;
//   - calls-allocating: a call to an unannotated module function whose
//     bottom-up summary contains any of the above (reported at the
//     call site, naming the callee and a representative allocation),
//     or to a standard-library function known to allocate (fmt,
//     errors, strings, non-Append strconv, sort.Slice).
//
// Facts make the check interprocedural: every module function gets an
// allocation summary computed bottom-up over the call graph's SCCs, so
// a hot function calling a cold helper three packages away is caught at
// the call site. Annotated functions are audit boundaries: their own
// findings are reported inside them, and callers do not re-inherit
// them — annotating a helper is the sanctioned way to split a long hot
// path into separately-audited segments.
//
// Soundness caveats (DESIGN.md §16): the pass flags potential
// allocations — escape analysis may keep a flagged &T{} on the stack
// (carry an allow arguing that, ideally with a benchmark); recursion
// within an SCC is not summarized; calls through laundered function
// values are invisible.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "//t3d:hotpath functions must be allocation-free, through calls, up to the next annotated boundary",
	RunModule: runModule,
}

// A site is one potential allocation, for summaries and messages.
type site struct {
	pos   token.Pos
	class string
	what  string
}

// A fact is a function's allocation summary: a bounded sample of the
// allocation sites a call to it may execute.
type fact struct {
	sites []site
}

// passName duplicates Analyzer.Name for use inside run functions (a
// direct reference would be an initialization cycle).
const passName = "hotalloc"

const maxFactSites = 8

func runModule(mp *analysis.ModulePass) error {
	m := mp.Module
	h := &hotPass{mp: mp}
	for _, comp := range m.Graph.SCCs() {
		for _, n := range comp {
			h.summarize(n)
		}
	}
	for _, n := range m.Graph.Nodes {
		if n.Hot && m.Target(n.Pkg) {
			h.report(n)
		}
	}
	return nil
}

type hotPass struct {
	mp *analysis.ModulePass
}

// intrinsics returns the allocation sites written directly in n's own
// body (nested literals excluded — each literal is its own node, and
// only its creation is n's allocation).
func (h *hotPass) intrinsics(n *analysis.FuncNode) []site {
	info := n.Pkg.Info
	var sites []site
	add := func(pos token.Pos, class, what string) {
		sites = append(sites, site{pos, class, what})
	}
	ast.Inspect(n.Body(), func(nn ast.Node) bool {
		switch x := nn.(type) {
		case *ast.FuncLit:
			if caps := captures(n.Pkg, x); caps > 0 {
				add(x.Pos(), "closure", fmt.Sprintf("closure capturing %d variables", caps))
			}
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					add(x.Pos(), "escape-composite", "&composite literal")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				add(x.Pos(), "escape-composite", "slice literal")
			case *types.Map:
				add(x.Pos(), "escape-composite", "map literal")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(info.TypeOf(x)) {
				add(x.Pos(), "string-conv", "string concatenation")
			}
		case *ast.CallExpr:
			h.callSites(n, x, add)
		}
		return true
	})
	return sites
}

// callSites classifies one call expression's own allocations: builtins,
// conversions, and interface boxing of arguments. Callee summaries are
// handled separately (they depend on facts).
func (h *hotPass) callSites(n *analysis.FuncNode, call *ast.CallExpr, add func(token.Pos, string, string)) {
	info := n.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				add(call.Pos(), "make", "make")
			case "new":
				add(call.Pos(), "new", "new")
			case "append":
				add(call.Pos(), "append", "append (may grow)")
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from)) {
			add(call.Pos(), "string-conv", "string conversion copies")
		}
		return
	}
	// Interface boxing at argument positions.
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case call.Ellipsis.IsValid() && i == len(call.Args)-1:
			// f(xs...): the slice is passed through, nothing boxes here.
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case params.Len() > 0:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok && sig.Variadic() {
				pt = sl.Elem()
			} else {
				pt = last
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(at) || pointerShaped(at) {
			continue
		}
		add(arg.Pos(), "iface-box", fmt.Sprintf("%s boxed into %s", at, pt))
	}
}

// summarize computes n's allocation summary: its intrinsic sites plus
// those inherited from unannotated module callees. Annotated callees
// are boundaries — separately audited, never re-inherited.
func (h *hotPass) summarize(n *analysis.FuncNode) {
	f := &fact{}
	if !n.Hot {
		f.sites = h.intrinsics(n)
		for _, e := range n.Out {
			if e.Kind != analysis.EdgeCall || e.Site == nil || len(f.sites) >= maxFactSites {
				continue
			}
			if cs := h.calleeAllocs(n, e); len(cs) > 0 {
				f.sites = append(f.sites, site{e.Site.Pos(), "calls-allocating",
					fmt.Sprintf("call to %s (%s)", e.Callee.Name, cs[0].what)})
			}
		}
		if len(f.sites) > maxFactSites {
			f.sites = f.sites[:maxFactSites]
		}
	}
	h.mp.Module.Facts.Set(passName, n, f)
}

// calleeAllocs returns the callee's summary sites for an edge, or nil
// for annotated callees, same-SCC recursion, and clean callees.
func (h *hotPass) calleeAllocs(n *analysis.FuncNode, e *analysis.Edge) []site {
	if e.Callee.Hot {
		return nil
	}
	if e.Callee.SCC() == n.SCC() {
		return nil
	}
	f, _ := h.mp.Module.Facts.Get(passName, e.Callee).(*fact)
	if f == nil {
		return nil
	}
	return f.sites
}

// report emits findings inside one annotated function: its intrinsic
// sites, plus call sites whose callees allocate.
func (h *hotPass) report(n *analysis.FuncNode) {
	for _, s := range h.intrinsics(n) {
		h.mp.ReportClassf(s.pos, s.class,
			"%s in //t3d:hotpath function %s — hot paths must be allocation-free (bench allocs/op gate, ROADMAP item 1); hoist it, pool it, or argue the case in a //lint:allow", s.what, n.Name)
	}
	seen := map[*ast.CallExpr]bool{}
	for _, e := range n.Out {
		if e.Kind != analysis.EdgeCall || e.Site == nil || seen[e.Site] {
			continue
		}
		if cs := h.calleeAllocs(n, e); len(cs) > 0 {
			seen[e.Site] = true
			rep := cs[0]
			h.mp.ReportClassf(e.Site.Pos(), "calls-allocating",
				"//t3d:hotpath function %s calls %s, which allocates (%s at %s) — annotate the callee to audit it separately, make it allocation-free, or argue the case in a //lint:allow",
				n.Name, e.Callee.Name, rep.what, h.mp.Fset.Position(rep.pos))
		}
	}
	// Known-allocating standard-library calls.
	info := n.Pkg.Info
	ast.Inspect(n.Body(), func(nn ast.Node) bool {
		if _, ok := nn.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nn.(*ast.CallExpr)
		if !ok || seen[call] {
			return true
		}
		fn := analysis.CalleeIn(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if name := allocatingStdlib(fn); name != "" {
			seen[call] = true
			h.mp.ReportClassf(call.Pos(), "calls-allocating",
				"//t3d:hotpath function %s calls %s, which allocates — hot paths must not format, concatenate, or sort; move it off the fast path or argue the case in a //lint:allow", n.Name, name)
		}
		return true
	})
}

// allocatingStdlib names standard-library callees known to allocate on
// every call; everything else in std is assumed clean (the pass is a
// hot-path gate, not an escape analysis).
func allocatingStdlib(fn *types.Func) string {
	pkg := fn.Pkg().Path()
	name := fn.Name()
	switch pkg {
	case "fmt", "errors", "strings":
		return pkg + "." + name
	case "strconv":
		if strings.HasPrefix(name, "Append") {
			return "" // appends into a caller-owned buffer
		}
		return pkg + "." + name
	case "sort":
		if name == "Slice" || name == "SliceStable" || name == "Sort" {
			return pkg + "." + name
		}
	}
	return ""
}

func captures(pkg *analysis.Package, lit *ast.FuncLit) int {
	info := pkg.Info
	seen := map[*types.Var]bool{}
	count := 0
	ast.Inspect(lit.Body, func(nn ast.Node) bool {
		id, ok := nn.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level, not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			seen[v] = true
			count++
		}
		return true
	})
	return count
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether boxing t into an interface stores the
// value directly in the interface word, with no allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
