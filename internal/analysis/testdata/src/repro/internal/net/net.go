// Package net is a hermetic stub of repro/internal/net for analyzer
// golden tests: just the taxonomy sentinel.
package net

import "errors"

// ErrPartitioned mirrors the partition taxonomy sentinel.
var ErrPartitioned = errors.New("net: torus partitioned")
