// Package serve is a hermetic stub of repro/internal/serve for
// analyzer golden tests: the service-layer taxonomy sentinels plus one
// fallible entry point.
package serve

import (
	"errors"
	"time"
)

// ErrShed mirrors the overload-shed sentinel (HTTP 429 + Retry-After).
var ErrShed = errors.New("serve: shed")

// ErrJobDeadline mirrors the per-job budget sentinel.
var ErrJobDeadline = errors.New("serve: job deadline")

// ErrJournalDegraded mirrors the journal brownout sentinel (HTTP 503 +
// Retry-After): *DegradedError wraps it.
var ErrJournalDegraded = errors.New("serve: journal degraded")

// ErrQuotaExceeded mirrors the per-tenant quota sentinel (HTTP 429 +
// Retry-After): *QuotaError wraps it.
var ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")

// Server mirrors the service with a fallible submit.
type Server struct{}

// Submit mirrors admission: the error may carry a shed or drain
// verdict.
func (s *Server) Submit(spec int) (string, error) { return "", nil }

// watch mirrors host-layer idiom — wall-clock deadlines and worker
// goroutines are this package's job. The determinism pass exempts
// repro/internal/serve wholesale; this must stay silent.
func watch(f func()) time.Time {
	go f()
	return time.Now()
}
