// ok.go is the no-false-positive fixture: every function mirrors a
// blessed pattern from the real tree and must produce zero determinism
// diagnostics.
package fixdet

import (
	"fmt"
	"math/rand"
	"slices"
)

// seededRand mirrors em3d/graph.go: an explicit seeded source replays
// bit-identically, so the constructors are exempt.
func seededRand(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(1024)
	}
	return out
}

// collectThenSort mirrors exp/local.go: keys gathered in map order and
// immediately sorted are order-independent.
func collectThenSort(set map[int64]bool) []int64 {
	xs := make([]int64, 0, len(set))
	for s := range set {
		xs = append(xs, s)
	}
	slices.Sort(xs)
	return xs
}

// perKeyWrite: one write per key lands identically in any order.
func perKeyWrite(src map[string]int, dst map[string]string) {
	for k, v := range src {
		dst[k] = fmt.Sprintf("%s=%d", k, v)
	}
}

// accumulate: += folds are commutative, hence order-independent.
func accumulate(m map[string]int64) int64 {
	var sum int64
	for _, v := range m {
		sum += v
	}
	return sum
}

// loopLocals: temporaries scoped inside the body carry no state across
// iterations.
func loopLocals(m map[string]int) {
	for _, v := range m {
		double := v * 2
		double++
		_ = double
	}
}

// sliceRange: only map iteration is randomized; slices are ordered.
func sliceRange(xs []int) {
	var out string
	for _, x := range xs {
		out = fmt.Sprint(x)
	}
	_ = out
}
