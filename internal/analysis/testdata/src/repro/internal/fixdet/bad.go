// Package fixdet holds determinism golden fixtures. bad.go carries one
// function per violation kind; each // want line is the expected
// diagnostic.
package fixdet

import (
	"fmt"
	"math/rand"
	"time"
)

var last string
var total int64

// wallClock reads host time: different on every run.
func wallClock() time.Duration {
	t0 := time.Now()      // want `wall-clock time.Now in simulator code`
	return time.Since(t0) // want `wall-clock time.Since in simulator code`
}

// globalRand draws from the process-seeded shared source.
func globalRand() int {
	return rand.Intn(16) // want `global math/rand Intn draws from the process-seeded shared source`
}

// globalShuffle: mutating helpers on the global source are just as bad.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand Shuffle draws from the process-seeded shared source`
}

// rawGoroutine races the event kernel.
func rawGoroutine(f func()) {
	go f() // want `raw go statement outside the internal/sim scheduler`
}

// mapOrderOutput emits output in map order: line order differs per run.
func mapOrderOutput(m map[string]int) {
	for k, v := range m { // want `iteration over map m emits output \(Println\)`
		fmt.Println(k, v)
	}
}

// mapOrderAssign leaves whichever key the runtime visited last.
func mapOrderAssign(m map[string]int) {
	for k := range m { // want `iteration over map m assigns last outside the loop`
		last = k
	}
}

// mapOrderReduce: %= is not commutative, so the fold depends on order.
func mapOrderReduce(m map[int]int64) {
	for _, v := range m { // want `iteration over map m assigns total outside the loop`
		total %= v
	}
}
