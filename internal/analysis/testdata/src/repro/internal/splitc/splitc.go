// Package splitc is a hermetic stub of repro/internal/splitc for
// analyzer golden tests: the same import path and method surface as
// the real Split-C runtime context, with no behavior, so the passes'
// type-based matching works exactly as it does on the real tree.
package splitc

import "repro/internal/sim"

// GlobalPtr mirrors the packed (PE, offset) global pointer.
type GlobalPtr uint64

// CPU mirrors the local-access surface of the node processor.
type CPU struct{}

// Load64 mirrors a local 64-bit load.
func (c *CPU) Load64(p *sim.Proc, va int64) uint64 { return 0 }

// Node mirrors the node a context executes on.
type Node struct{ CPU *CPU }

// Ctx mirrors the Split-C thread context.
type Ctx struct {
	Node *Node
	P    *sim.Proc
}

func (c *Ctx) Get(dst int64, g GlobalPtr)              {}
func (c *Ctx) Put(g GlobalPtr, v uint64)               {}
func (c *Ctx) BulkGet(dst int64, g GlobalPtr, n int64) {}
func (c *Ctx) BulkPut(g GlobalPtr, src, n int64)       {}
func (c *Ctx) Sync()                                   {}
func (c *Ctx) AllStoreSync()                           {}
func (c *Ctx) Barrier()                                {}
func (c *Ctx) SyncWithin(budget sim.Time) error        { return nil }

func (c *Ctx) WithDeadline(budget sim.Time, fn func()) error { return nil }

// MyPE mirrors the PE-identity query used for slotting and
// single-writer guards.
func (c *Ctx) MyPE() int { return 0 }

// Runtime mirrors the Split-C runtime's spawn surface: Run replicates
// one program body across every PE; RunOn starts it on a single PE.
type Runtime struct{}

func (rt *Runtime) Run(program func(c *Ctx)) sim.Time           { return 0 }
func (rt *Runtime) RunOn(pe int, program func(c *Ctx)) sim.Time { return 0 }

func (c *Ctx) Read(g GlobalPtr) uint64                                  { return 0 }
func (c *Ctx) Write(g GlobalPtr, v uint64)                              {}
func (c *Ctx) ReadWithin(g GlobalPtr, budget sim.Time) (uint64, error)  { return 0, nil }
func (c *Ctx) WriteWithin(g GlobalPtr, v uint64, budget sim.Time) error { return nil }
