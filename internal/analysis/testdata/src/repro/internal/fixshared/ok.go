// ok.go is the no-false-positive fixture: every variable mirrors a
// sanctioned pattern from the real tree and must stay silent.
package fixshared

import (
	"errors"

	"repro/internal/sim"
	"repro/internal/splitc"
)

// errOverrun mirrors the error-sentinel idiom: package-level but never
// reassigned, so it is immutable and out of scope.
var errOverrun = errors.New("fixshared: overrun")

func checkOverrun(rt *splitc.Runtime) {
	rt.Run(func(c *splitc.Ctx) {
		if c.MyPE() < 0 {
			panic(errOverrun)
		}
	})
}

// published mirrors the write-then-Fire publication idiom: the writer
// fires a signal, readers order against the write through the event
// kernel, and that ordering survives the sharded heap.
var published uint64

func publish(rt *splitc.Runtime, eng *sim.Engine, done *sim.Signal) {
	rt.Run(func(c *splitc.Ctx) {
		published = 42
		done.Fire(eng)
	})
}

// tally is published over a channel from inside the proc body — channel
// mediation is as good as a signal.
var tally uint64

func channelMediated(rt *splitc.Runtime, ch chan uint64) {
	rt.Run(func(c *splitc.Ctx) {
		tally = uint64(c.MyPE())
		ch <- tally
	})
}

// soloCapture: state captured by a single RunOn body is private to that
// one proc — weight 1, not shared.
func soloCapture(rt *splitc.Runtime) uint64 {
	var result uint64
	rt.RunOn(0, func(c *splitc.Ctx) {
		result = 9
	})
	return result
}

// hostCounter is mutated and read on the host only, never from a proc
// body — no proc reaches it, so it is out of scope.
var hostCounter int

func hostOnly() int {
	hostCounter++
	return hostCounter
}

// perFrame mirrors the checksum/per-transaction idiom: a local captured
// by a closure inside a function *called from* proc bodies is created
// fresh on every invocation — each proc mutates its own frame's
// instance, so the binding is never shared between procs.
func perFrame(x uint64) uint64 {
	h := uint64(1)
	mix := func(v uint64) {
		h ^= v
		h *= 3
	}
	mix(x)
	return h
}

func hashAll(rt *splitc.Runtime) {
	rt.Run(func(c *splitc.Ctx) {
		_ = perFrame(uint64(c.MyPE()))
	})
}

// stats: writing a FIELD through a captured pointer mutates the struct
// behind it, not the variable binding — struct-field tracking is out of
// scope by design (the receiver-pointer idiom would otherwise flood the
// inventory), so the pointer variable itself must stay silent.
type stats struct {
	ops uint64
}

func fieldWrites(rt *splitc.Runtime, st *stats) {
	rt.Run(func(c *splitc.Ctx) {
		st.ops++
	})
}
