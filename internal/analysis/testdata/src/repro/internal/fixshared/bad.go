// Package fixshared holds sharedstate golden fixtures. bad.go carries
// one variable per classification; each // want comment sits on the
// variable's declaration line, where the pass reports.
package fixshared

import "repro/internal/splitc"

// hits is raw cross-proc mutable state: every PE increments it with no
// mediation and no slotting — the canonical parallel-DES data race.
var hits int // want `package-level var hits is mutated from 2 procs with no mediating signal/channel and no PE slotting`

func countAll(rt *splitc.Runtime) {
	rt.Run(func(c *splitc.Ctx) {
		hits++
	})
}

// reduceRace captures a local in a replicated proc body and reduces
// into it: a race between PEs once procs run concurrently.
func reduceRace(rt *splitc.Runtime) int {
	total := 0 // want `captured var total is mutated from 2 procs with no mediating signal/channel and no PE slotting`
	rt.Run(func(c *splitc.Ctx) {
		total += 1
	})
	return total
}

// slots is written only through PE-private slots: disciplined sharing,
// still inventoried so the refactor preserves the slotting.
var slots [16]uint64 // want `package-level var slots is written from 2 procs through PE-private slots or a PE-identity guard`

func fillSlots(rt *splitc.Runtime) {
	rt.Run(func(c *splitc.Ctx) {
		slots[c.MyPE()] = 7
	})
}

// winner has a single designated writer behind a PE-identity check.
var winner uint64 // want `package-level var winner is written from 2 procs through PE-private slots or a PE-identity guard`

func electWinner(rt *splitc.Runtime) {
	rt.Run(func(c *splitc.Ctx) {
		if c.MyPE() == 0 {
			winner = 1
		}
	})
}

// crossTalk is written by two distinct single-PE proc bodies — two
// RunOn roots, weight 2, no replication needed.
var crossTalk uint64 // want `package-level var crossTalk is mutated from 2 procs with no mediating signal/channel and no PE slotting`

func pingPong(rt *splitc.Runtime) {
	rt.RunOn(0, func(c *splitc.Ctx) {
		crossTalk = 1
	})
	rt.RunOn(1, func(c *splitc.Ctx) {
		crossTalk = 2
	})
}

// laneOwner is written under a MyPE switch — a designated single writer
// per case arm, the switch form of the PE-identity guard.
var laneOwner uint64 // want `package-level var laneOwner is written from 2 procs through PE-private slots or a PE-identity guard`

func switchWriter(rt *splitc.Runtime) {
	rt.Run(func(c *splitc.Ctx) {
		switch c.MyPE() {
		case 0:
			laneOwner = 1
		}
	})
}

// gatekeeper is written under a tagless switch whose case expression
// tests PE identity — the same single-writer discipline, spelled
// switch { case c.MyPE() == 0: }.
var gatekeeper uint64 // want `package-level var gatekeeper is written from 2 procs through PE-private slots or a PE-identity guard`

func switchGate(rt *splitc.Runtime) {
	rt.Run(func(c *splitc.Ctx) {
		switch {
		case c.MyPE() == 0:
			gatekeeper = 3
		}
	})
}

// table is written only at setup time, outside any proc body, and read
// by every PE during the run: frozen-during-run shared state.
var table []uint64 // want `package-level var table is read from 3 procs and mutated only outside proc context`

func setup() {
	table = make([]uint64, 64)
}

func readers(rt *splitc.Runtime) uint64 {
	var out uint64
	rt.RunOn(0, func(c *splitc.Ctx) {
		out = table[c.MyPE()]
	})
	rt.Run(func(c *splitc.Ctx) {
		_ = table[c.MyPE()]
	})
	return out
}
