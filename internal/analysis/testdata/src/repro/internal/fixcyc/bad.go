// Package fixcyc holds cycleaccount golden fixtures. bad.go carries
// one function per violation kind; each // want line is the expected
// diagnostic.
package fixcyc

import (
	"os/exec"
	"sync"
	"time"

	"repro/internal/sim"
)

// sleeper stalls the whole event kernel in host time.
func sleeper(p *sim.Proc) {
	time.Sleep(time.Millisecond) // want `time.Sleep in a \*sim.Proc function`
}

// wallClock smuggles host timing into simulated results.
func wallClock(p *sim.Proc) sim.Time {
	t0 := time.Now() // want `wall-clock time.Now in a \*sim.Proc function`
	_ = t0
	return p.Now()
}

// chanRecv parks the goroutine outside the scheduler's token handoff.
func chanRecv(p *sim.Proc, ch chan int) int {
	return <-ch // want `channel receive in a \*sim.Proc function`
}

// chanSend: the sending side blocks just the same.
func chanSend(p *sim.Proc, ch chan int) {
	ch <- 1 // want `channel send in a \*sim.Proc function`
}

// selectWait: select is a multi-way park.
func selectWait(p *sim.Proc, done chan struct{}) {
	select { // want `select in a \*sim.Proc function`
	case <-done: // want `channel receive in a \*sim.Proc function`
	default:
	}
}

// chanDrain: ranging a channel blocks per element.
func chanDrain(p *sim.Proc, ch chan int) (n int) {
	for range ch { // want `range over a channel in a \*sim.Proc function`
		n++
	}
	return n
}

// locker blocks on an OS mutex, bypassing simulated time.
func locker(p *sim.Proc, mu *sync.Mutex) {
	mu.Lock() // want `\(\*sync.Mutex\).Lock in a \*sim.Proc function`
	defer mu.Unlock()
}

// waiter blocks on a WaitGroup.
func waiter(p *sim.Proc, wg *sync.WaitGroup) {
	wg.Wait() // want `\(\*sync.WaitGroup\).Wait in a \*sim.Proc function`
}

// spawner forks a process: unbounded host-time work.
func spawner(p *sim.Proc) error {
	cmd := exec.Command("hostname") // want `os/exec in a \*sim.Proc function`
	return cmd.Run()                // want `os/exec in a \*sim.Proc function`
}

// procWorker proves methods count: parameters are scanned the same way
// regardless of the receiver.
type procWorker struct{ p *sim.Proc }

func (w procWorker) step(p *sim.Proc) {
	time.Sleep(1) // want `time.Sleep in a \*sim.Proc function`
}
