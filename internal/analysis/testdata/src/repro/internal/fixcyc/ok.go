// ok.go is the no-false-positive fixture: every function mirrors a
// blessed pattern from the real tree and must produce zero
// cycleaccount diagnostics.
package fixcyc

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// simTime charges cost in simulated cycles and reads the simulated
// clock — the blessed pattern.
func simTime(p *sim.Proc) sim.Time {
	p.Compute(120)
	return p.Now()
}

// waitSignal parks through the scheduler, not the OS.
func waitSignal(p *sim.Proc, s *sim.Signal) {
	p.WaitSignal(s)
}

// hostHarness has no *sim.Proc in its signature: wall-clock and
// channels are fine outside the simulated-time contract (this is what
// test harnesses and CLI drivers do).
func hostHarness(results chan int) (int, time.Duration) {
	t0 := time.Now()
	v := <-results
	return v, time.Since(t0)
}

// nestedLitOwnContract: a closure without a *sim.Proc parameter is
// judged by its own signature, even when built inside a proc function.
func nestedLitOwnContract(p *sim.Proc, mu *sync.Mutex) func() {
	p.Compute(1)
	return func() {
		mu.Lock()
		defer mu.Unlock()
	}
}

// nonBlockingSync: Unlock and Add never park; only the blocking
// surface is flagged.
func nonBlockingSync(p *sim.Proc, mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Unlock()
	wg.Add(1)
	wg.Done()
}
