// ok.go is the no-false-positive fixture: allocation-free hot code and
// the patterns the pass must not confuse with allocation.
package fixhot

// valueComposite: a plain value literal stays on the stack — the
// non-escaping mirror of escapeComposite.
//
//t3d:hotpath
func valueComposite() int64 {
	e := event{at: 3}
	return e.at
}

// passPtr: a pointer is pointer-shaped, so boxing it into an interface
// word allocates nothing — the mirror of boxInt.
//
//t3d:hotpath
func passPtr(e *event) {
	sinkAny(e)
}

// hotHelper is a separately-audited segment of the hot path.
//
//t3d:hotpath
func hotHelper(e *event) int64 {
	return e.at + 1
}

// hotCaller: an annotated callee is an audit boundary, not an
// allocation — even though unannotated callers of allocating helpers
// are flagged.
//
//t3d:hotpath
func hotCaller(e *event) int64 {
	return hotHelper(e)
}

// arithOnly: index, arithmetic, and shifts are free.
//
//t3d:hotpath
func arithOnly(xs []uint64, i int) uint64 {
	return xs[i]<<1 + 7
}

// cleanHelper is unannotated and allocation-free; calling it from hot
// code is fine.
func cleanHelper(x uint64) uint64 {
	return x * 2654435761
}

//t3d:hotpath
func callsClean(x uint64) uint64 {
	return cleanHelper(x)
}

// coldAlloc allocates, but nothing annotated calls it: off the hot
// path, allocation is nobody's business.
func coldAlloc() []int {
	return []int{1, 2, 3}
}
