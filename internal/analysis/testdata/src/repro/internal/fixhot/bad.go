// Package fixhot holds hotalloc golden fixtures. bad.go carries one
// annotated function per allocation class; // want lines sit on the
// allocation sites.
package fixhot

import "strconv"

type event struct {
	at int64
}

//t3d:hotpath
func escapeComposite(sink **event) {
	*sink = &event{at: 1} // want `&composite literal in //t3d:hotpath function fixhot.escapeComposite`
}

//t3d:hotpath
func sliceLit() []int {
	return []int{1, 2, 3} // want `slice literal in //t3d:hotpath function fixhot.sliceLit`
}

//t3d:hotpath
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal in //t3d:hotpath function fixhot.mapLit`
}

//t3d:hotpath
func makeAlloc(n int) []byte {
	return make([]byte, n) // want `make in //t3d:hotpath function fixhot.makeAlloc`
}

//t3d:hotpath
func newAlloc() *event {
	return new(event) // want `new in //t3d:hotpath function fixhot.newAlloc`
}

//t3d:hotpath
func appendGrow(xs []int, v int) []int {
	return append(xs, v) // want `append \(may grow\) in //t3d:hotpath function fixhot.appendGrow`
}

//t3d:hotpath
func closureCapture(v int) func() int {
	f := func() int { return v } // want `closure capturing 1 variables in //t3d:hotpath function fixhot.closureCapture`
	return f
}

//t3d:hotpath
func stringConv(b []byte) string {
	return string(b) // want `string conversion copies in //t3d:hotpath function fixhot.stringConv`
}

//t3d:hotpath
func stringConcat(a, b string) string {
	return a + b // want `string concatenation in //t3d:hotpath function fixhot.stringConcat`
}

// sinkAny is an unannotated, allocation-free interface sink: the box
// happens at the caller's argument, the canonical hidden trace-call
// allocation.
func sinkAny(v any) {}

//t3d:hotpath
func boxInt(n int) {
	sinkAny(n) // want `int boxed into any in //t3d:hotpath function fixhot.boxInt`
}

// allocHelper is unannotated: its allocations surface at hot call
// sites via the bottom-up summary.
func allocHelper() *event {
	return &event{}
}

//t3d:hotpath
func callsAllocating() *event {
	return allocHelper() // want `//t3d:hotpath function fixhot.callsAllocating calls fixhot.allocHelper, which allocates`
}

// midHelper allocates only transitively, through allocHelper.
func midHelper() *event {
	return allocHelper()
}

//t3d:hotpath
func callsTransitively() *event {
	return midHelper() // want `//t3d:hotpath function fixhot.callsTransitively calls fixhot.midHelper, which allocates`
}

//t3d:hotpath
func formats(n int) string {
	return strconv.Itoa(n) // want `//t3d:hotpath function fixhot.formats calls strconv.Itoa, which allocates`
}
