// Package mem is a hermetic stub of repro/internal/mem for analyzer
// golden tests: the taxonomy sentinel plus one fallible entry point.
package mem

import "errors"

// ErrPoisoned mirrors the poison taxonomy sentinel.
var ErrPoisoned = errors.New("mem: poisoned word")

// Bank mirrors a memory bank with checked reads.
type Bank struct{}

// ReadChecked mirrors a fallible read whose error carries the poison
// verdict.
func (b *Bank) ReadChecked(addr int64) (uint64, error) { return 0, nil }
