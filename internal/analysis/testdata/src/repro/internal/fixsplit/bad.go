// Package fixsplit holds splitphase golden fixtures. bad.go carries
// one function per violation kind; each // want line is the expected
// diagnostic.
package fixsplit

import "repro/internal/splitc"

// getNoSync issues a get and returns without any settling sync.
func getNoSync(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) {
	c.Get(dst, g) // want `split-phase Get is not settled by a dominating Sync`
}

// branchOnlySync settles only on one control-flow path: the fall-through
// exit still carries the pending counter.
func branchOnlySync(c *splitc.Ctx, g splitc.GlobalPtr, dst int64, fast bool) {
	c.Get(dst, g) // want `split-phase Get is not settled by a dominating Sync`
	if fast {
		c.Sync()
	}
}

// readBeforeSync reads the landing zone while the get is in flight —
// the canonical Split-C miscompilation.
func readBeforeSync(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) uint64 {
	c.Get(dst, g)
	v := c.Node.CPU.Load64(c.P, dst) // want `local read of dst, the destination of an un-synced Get`
	c.Sync()
	return v
}

// putLoopNoSettle pipelines puts but never drains the store counter.
func putLoopNoSettle(c *splitc.Ctx, g splitc.GlobalPtr) {
	for i := 0; i < 8; i++ {
		c.Put(g, uint64(i)) // want `split-phase Put is not settled by a dominating Sync`
	}
}

// bulkNoSync: bulk transfers carry the same obligation as word ops.
func bulkNoSync(c *splitc.Ctx, g splitc.GlobalPtr, src int64) {
	c.BulkPut(g, src, 1<<10) // want `split-phase BulkPut is not settled by a dominating Sync`
}

// litEscapes: a function literal owns its own sync obligations even
// when declared inside a function that syncs.
func litEscapes(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) func() {
	f := func() {
		c.BulkGet(dst, g, 64) // want `split-phase BulkGet is not settled by a dominating Sync`
	}
	c.Get(dst, g)
	c.Sync()
	return f
}

// helperPutNoSettle issues the put; neither it nor its only caller ever
// syncs, so the obligation escapes — blamed at the issue site, found
// through the call graph.
func helperPutNoSettle(c *splitc.Ctx, g splitc.GlobalPtr) {
	c.Put(g, 1) // want `split-phase Put is not settled by a dominating Sync`
}

func callerNeverSyncs(c *splitc.Ctx, g splitc.GlobalPtr) {
	helperPutNoSettle(c, g)
}

// helperGetMixed has one caller that settles and one that does not: the
// unsettled path still escapes, so the origin is reported.
func helperGetMixed(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) {
	c.Get(dst, g) // want `split-phase Get is not settled by a dominating Sync`
}

func mixedGoodCaller(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) {
	helperGetMixed(c, g, dst)
	c.Sync()
}

func mixedBadCaller(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) {
	helperGetMixed(c, g, dst)
}

// spawnedBodyPending: a proc body handed to the runtime must settle its
// own operations — the scheduler will not sync on its behalf.
func spawnedBodyPending(rt *splitc.Runtime, g splitc.GlobalPtr) {
	rt.RunOn(0, func(c *splitc.Ctx) {
		c.Put(g, 2) // want `split-phase Put is not settled by a dominating Sync`
	})
}
