// ok.go is the no-false-positive fixture: every function mirrors a
// blessed pattern from the real tree (internal/apps, internal/exp) and
// must produce zero splitphase diagnostics.
package fixsplit

import "repro/internal/splitc"

// getWindowThenSync mirrors the em3d gather: a window of pipelined gets
// settled by one sync.
func getWindowThenSync(c *splitc.Ctx, gs []splitc.GlobalPtr, base int64) {
	for i, g := range gs {
		c.Get(base+int64(i)*8, g)
	}
	c.Sync()
}

// bothBranchesSettle settles on every path to exit.
func bothBranchesSettle(c *splitc.Ctx, g splitc.GlobalPtr, dst int64, fast bool) {
	c.Get(dst, g)
	if fast {
		c.Sync()
	} else {
		c.Barrier()
	}
}

// bulkPipeline mirrors the bulk-put experiments: AllStoreSync drains
// the store counter before the closing barrier.
func bulkPipeline(c *splitc.Ctx, g splitc.GlobalPtr, src int64) {
	c.BulkPut(g, src, 1<<10)
	c.AllStoreSync()
	c.Barrier()
}

// syncWithinSettles: the deadline-bounded sync is still a sync.
func syncWithinSettles(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) error {
	c.Get(dst, g)
	return c.SyncWithin(500)
}

// deadlineBodySyncs: WithDeadline whose body syncs counts as a settle
// at the call site.
func deadlineBodySyncs(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) error {
	c.Get(dst, g)
	return c.WithDeadline(1000, func() {
		c.Sync()
	})
}

// readAfterSync touches the landing zone only after the counter drains.
func readAfterSync(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) uint64 {
	c.Get(dst, g)
	c.Sync()
	return c.Node.CPU.Load64(c.P, dst)
}

// deferredSync settles at every exit via defer.
func deferredSync(c *splitc.Ctx, g splitc.GlobalPtr, dst int64, n int) {
	defer c.Sync()
	for i := 0; i < n; i++ {
		c.Get(dst+int64(i)*8, g)
	}
}

// panicPathExempt: a path that cannot return carries no obligation.
func panicPathExempt(c *splitc.Ctx, g splitc.GlobalPtr, dst int64, ok bool) {
	c.Get(dst, g)
	if !ok {
		panic("fixsplit: bad input")
	}
	c.Sync()
}

// blockingOpsFree: Read/Write are blocking, not split-phase; no sync
// obligation attaches.
func blockingOpsFree(c *splitc.Ctx, g splitc.GlobalPtr) uint64 {
	c.Write(g, 7)
	return c.Read(g)
}

// helperGet issues the get; its caller performs the dominating sync.
// The summary-based analysis discharges the helper through the call
// graph instead of demanding a whole-function //lint:allow.
func helperGet(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) {
	c.Get(dst, g)
}

func callerSyncs(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) {
	helperGet(c, g, dst)
	c.Sync()
}

// syncingHelper settles the counter for its caller: the runtime's sync
// counter is per-processor, not per-frame, so a callee's sync settles
// the caller's earlier issues too.
func syncingHelper(c *splitc.Ctx) {
	c.Sync()
}

func callerUsesHelperSync(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) {
	c.Get(dst, g)
	syncingHelper(c)
}

// opSeries / fig7Mirror mirror the exp fig7 pattern: an op literal
// flows into a parameter, is invoked inside the runtime program, and
// the program's sync settles it — discharged via one-level value flow.
func opSeries(rt *splitc.Runtime, op func(c *splitc.Ctx, g splitc.GlobalPtr), g splitc.GlobalPtr) {
	rt.RunOn(0, func(c *splitc.Ctx) {
		op(c, g)
		c.Sync()
	})
}

func fig7Mirror(rt *splitc.Runtime, g splitc.GlobalPtr) {
	opSeries(rt, func(c *splitc.Ctx, g splitc.GlobalPtr) {
		c.Put(g, 1)
	}, g)
}
