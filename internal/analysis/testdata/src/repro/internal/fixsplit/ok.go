// ok.go is the no-false-positive fixture: every function mirrors a
// blessed pattern from the real tree (internal/apps, internal/exp) and
// must produce zero splitphase diagnostics.
package fixsplit

import "repro/internal/splitc"

// getWindowThenSync mirrors the em3d gather: a window of pipelined gets
// settled by one sync.
func getWindowThenSync(c *splitc.Ctx, gs []splitc.GlobalPtr, base int64) {
	for i, g := range gs {
		c.Get(base+int64(i)*8, g)
	}
	c.Sync()
}

// bothBranchesSettle settles on every path to exit.
func bothBranchesSettle(c *splitc.Ctx, g splitc.GlobalPtr, dst int64, fast bool) {
	c.Get(dst, g)
	if fast {
		c.Sync()
	} else {
		c.Barrier()
	}
}

// bulkPipeline mirrors the bulk-put experiments: AllStoreSync drains
// the store counter before the closing barrier.
func bulkPipeline(c *splitc.Ctx, g splitc.GlobalPtr, src int64) {
	c.BulkPut(g, src, 1<<10)
	c.AllStoreSync()
	c.Barrier()
}

// syncWithinSettles: the deadline-bounded sync is still a sync.
func syncWithinSettles(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) error {
	c.Get(dst, g)
	return c.SyncWithin(500)
}

// deadlineBodySyncs: WithDeadline whose body syncs counts as a settle
// at the call site.
func deadlineBodySyncs(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) error {
	c.Get(dst, g)
	return c.WithDeadline(1000, func() {
		c.Sync()
	})
}

// readAfterSync touches the landing zone only after the counter drains.
func readAfterSync(c *splitc.Ctx, g splitc.GlobalPtr, dst int64) uint64 {
	c.Get(dst, g)
	c.Sync()
	return c.Node.CPU.Load64(c.P, dst)
}

// deferredSync settles at every exit via defer.
func deferredSync(c *splitc.Ctx, g splitc.GlobalPtr, dst int64, n int) {
	defer c.Sync()
	for i := 0; i < n; i++ {
		c.Get(dst+int64(i)*8, g)
	}
}

// panicPathExempt: a path that cannot return carries no obligation.
func panicPathExempt(c *splitc.Ctx, g splitc.GlobalPtr, dst int64, ok bool) {
	c.Get(dst, g)
	if !ok {
		panic("fixsplit: bad input")
	}
	c.Sync()
}

// blockingOpsFree: Read/Write are blocking, not split-phase; no sync
// obligation attaches.
func blockingOpsFree(c *splitc.Ctx, g splitc.GlobalPtr) uint64 {
	c.Write(g, 7)
	return c.Read(g)
}
