// Package fixallow exercises the //lint:allow suppression policy: a
// justified waiver silences its finding, while stale and malformed
// waivers become findings themselves.
package fixallow

import "time"

// waived carries a justified suppression: the wall-clock finding on the
// return line must vanish.
func waived() int64 {
	//lint:allow determinism fixture: proves a written-down waiver silences the finding
	return time.Now().UnixNano()
}

// stale carries a suppression with no finding under it: the allow
// itself must be reported as unused.
func stale() int64 {
	//lint:allow determinism fixture: nothing on the next line violates anything
	return 42
}

// missingReason omits the mandatory justification.
//
//lint:allow determinism
func missingReason() {}

// unknownPass names a pass that does not exist.
//
//lint:allow nosuchpass fixture: the pass name is unknown
func unknownPass() {}
