// Package fixerr holds errtaxonomy golden fixtures. bad.go carries one
// function per violation kind; each // want line is the expected
// diagnostic.
package fixerr

import (
	"strings"

	"repro/internal/mem"
	"repro/internal/net"
	"repro/internal/serve"
	"repro/internal/shell"
	"repro/internal/sim"
	"repro/internal/splitc"
)

// compareDeadline tests identity against a sentinel: wrapped values
// compare false.
func compareDeadline(c *splitc.Ctx, g splitc.GlobalPtr) bool {
	_, err := c.ReadWithin(g, 100)
	return err == sim.ErrDeadline // want `ErrDeadline compared with ==`
}

// comparePartition: != has the same wrapping bug.
func comparePartition(err error) bool {
	return err != net.ErrPartitioned // want `ErrPartitioned compared with !=`
}

// comparePoison covers the third sentinel.
func comparePoison(err error) bool {
	return err == mem.ErrPoisoned // want `ErrPoisoned compared with ==`
}

// compareShed covers the service-layer sentinels: *ShedError wraps
// ErrShed, so identity comparison is silently false.
func compareShed(err error) bool {
	return err == serve.ErrShed // want `ErrShed compared with ==`
}

// compareJobDeadline: same for the per-job budget sentinel.
func compareJobDeadline(err error) bool {
	return err != serve.ErrJobDeadline // want `ErrJobDeadline compared with !=`
}

// compareDegraded: the brownout sentinel is wrapped by *DegradedError,
// so identity comparison is silently false.
func compareDegraded(err error) bool {
	return err == serve.ErrJournalDegraded // want `ErrJournalDegraded compared with ==`
}

// compareQuota: the tenant-quota sentinel is wrapped by *QuotaError,
// so identity comparison is silently false.
func compareQuota(err error) bool {
	return err == serve.ErrQuotaExceeded // want `ErrQuotaExceeded compared with ==`
}

// discardSubmit drops an admission verdict: the caller never learns the
// job was shed.
func discardSubmit(s *serve.Server) {
	s.Submit(7) // want `error result of serve.Submit discarded`
}

// textMatch discriminates by message text, twice over.
func textMatch(err error) bool {
	if err.Error() == "mem: poisoned word" { // want `error discriminated by message text`
		return true
	}
	return strings.Contains(err.Error(), "poisoned") // want `strings.Contains over err.Error\(\)`
}

// discard throws a verdict-bearing error away as a bare statement.
func discard(c *splitc.Ctx) {
	c.SyncWithin(100) // want `error result of splitc.SyncWithin discarded`
}

// discardShell: package-level fallible calls count too.
func discardShell() {
	shell.Wait(100) // want `error result of shell.Wait discarded`
}

// blankError ships the value and drops the verdict.
func blankError(c *splitc.Ctx, g splitc.GlobalPtr) uint64 {
	v, _ := c.ReadWithin(g, 100) // want `error result of splitc.ReadWithin assigned to _`
	return v
}

// swallow tests the error and then ignores which error it was.
func swallow(c *splitc.Ctx, g splitc.GlobalPtr) {
	err := c.WriteWithin(g, 1, 100)
	if err != nil { // want `err is checked non-nil but its verdict is dropped`
		return
	}
}
