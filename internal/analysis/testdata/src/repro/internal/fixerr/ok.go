// ok.go is the no-false-positive fixture: every function mirrors the
// blessed error-handling patterns from the real tree and must produce
// zero errtaxonomy diagnostics.
package fixerr

import (
	"errors"
	"fmt"

	"repro/internal/mem"
	"repro/internal/net"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/splitc"
)

// discriminate mirrors the apps' retry loops: every verdict is tested
// with errors.Is and the unknown case propagates.
func discriminate(c *splitc.Ctx, g splitc.GlobalPtr) (uint64, error) {
	v, err := c.ReadWithin(g, 100)
	switch {
	case err == nil:
		return v, nil
	case errors.Is(err, sim.ErrDeadline):
		return 0, fmt.Errorf("fixerr: read timed out: %w", err)
	case errors.Is(err, net.ErrPartitioned):
		return 0, fmt.Errorf("fixerr: target unreachable: %w", err)
	case errors.Is(err, mem.ErrPoisoned):
		return 0, fmt.Errorf("fixerr: data lost: %w", err)
	}
	return 0, err
}

// propagate hands the verdict up unexamined — legal: the caller
// discriminates.
func propagate(c *splitc.Ctx) error {
	return c.SyncWithin(100)
}

// wrapAndPanic uses the error inside the non-nil branch.
func wrapAndPanic(c *splitc.Ctx, g splitc.GlobalPtr) uint64 {
	v, err := c.ReadWithin(g, 100)
	if err != nil {
		panic(fmt.Sprintf("fixerr: unrecoverable: %v", err))
	}
	return v
}

// submitWithBackoff mirrors a well-behaved t3dserve client: shed and
// deadline verdicts are discriminated with errors.Is; everything else
// propagates.
func submitWithBackoff(s *serve.Server, spec int) (string, error) {
	id, err := s.Submit(spec)
	switch {
	case err == nil:
		return id, nil
	case errors.Is(err, serve.ErrShed):
		return "", fmt.Errorf("fixerr: overloaded, retry later: %w", err)
	case errors.Is(err, serve.ErrJobDeadline):
		return "", fmt.Errorf("fixerr: budget exhausted: %w", err)
	case errors.Is(err, serve.ErrJournalDegraded):
		return "", fmt.Errorf("fixerr: journal brownout, retry later: %w", err)
	case errors.Is(err, serve.ErrQuotaExceeded):
		return "", fmt.Errorf("fixerr: tenant quota, retry later: %w", err)
	}
	return "", err
}

// checkedBank: fallible calls outside the taxonomy packages' blessed
// callers still count when handled properly.
func checkedBank(b *mem.Bank) (uint64, error) {
	v, err := b.ReadChecked(0x40)
	if err != nil {
		return 0, fmt.Errorf("fixerr: bank read: %w", err)
	}
	return v, nil
}
