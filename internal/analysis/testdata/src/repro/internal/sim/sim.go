// Package sim is a hermetic stub of repro/internal/sim for analyzer
// golden tests: the same import path and the slice of the API the
// fixtures touch, with no behavior.
package sim

import "errors"

// Time mirrors the event-kernel clock type.
type Time = int64

// ErrDeadline mirrors the deadline taxonomy sentinel.
var ErrDeadline = errors.New("sim: deadline exceeded")

// Proc mirrors a simulated processor context.
type Proc struct{}

// Now returns the simulated clock.
func (p *Proc) Now() Time { return 0 }

// Compute charges n simulated cycles.
func (p *Proc) Compute(n Time) {}

// Signal mirrors the scheduler wait primitive.
type Signal struct{}

// Fire mirrors the publication half of the write-then-Fire idiom.
func (s *Signal) Fire(e *Engine) {}

// WaitSignal parks the proc until the signal fires.
func (p *Proc) WaitSignal(s *Signal) {}

// Engine mirrors the event kernel's spawn surface.
type Engine struct{}

// Spawn mirrors starting a single proc on the event kernel.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc { return nil }

// spawn exists to prove the determinism exemption: the scheduler
// itself owns goroutine creation, so a raw go statement inside
// repro/internal/sim must not be flagged.
func spawn(f func()) {
	go f()
}
