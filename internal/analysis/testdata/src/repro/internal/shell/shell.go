// Package shell is a hermetic stub of repro/internal/shell for
// analyzer golden tests: one fallible entry point.
package shell

import "repro/internal/sim"

// Wait mirrors a fallible deadline wait.
func Wait(budget sim.Time) error { return nil }
