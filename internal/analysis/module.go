// Module-level analysis: the whole-program view under interprocedural
// passes. A Module bundles every loaded package, the call graph over
// them, and a fact store where passes record per-function summaries
// computed bottom-up over the graph's SCCs and queried across package
// boundaries.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Module is the whole-program view: every package the loader has
// resolved (the analysis targets plus their module-local dependencies,
// so cross-package call edges resolve), the call graph over them, and
// the shared fact store.
type Module struct {
	Loader *Loader
	Fset   *token.FileSet
	// Pkgs lists every loaded module-local package, sorted by import
	// path for deterministic iteration.
	Pkgs  []*Package
	Graph *CallGraph
	Facts *FactStore

	// Targets holds the import paths the user asked to lint; findings
	// are only reported in target packages, but facts are computed over
	// everything loaded so a target's helpers summarize correctly.
	Targets map[string]bool
}

// NewModule builds the module view over a loader's full package set.
func NewModule(l *Loader, targets []string) *Module {
	pkgs := l.Loaded()
	m := &Module{
		Loader:  l,
		Fset:    l.Fset,
		Pkgs:    pkgs,
		Graph:   BuildGraph(pkgs),
		Facts:   NewFactStore(),
		Targets: map[string]bool{},
	}
	for _, t := range targets {
		m.Targets[t] = true
	}
	return m
}

// Target reports whether findings in pkg should be reported.
func (m *Module) Target(pkg *Package) bool {
	return len(m.Targets) == 0 || m.Targets[pkg.Path]
}

// A ModulePass carries one interprocedural analyzer's view of the whole
// module.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module
	Fset     *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportClassf(pos, "", format, args...)
}

// ReportClassf records a finding at pos tagged with a violation class
// (a stable machine-readable label like "shared-mutable" or
// "iface-box" that survives message rewording).
func (p *ModulePass) ReportClassf(pos token.Pos, class, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pass:    p.Analyzer.Name,
		Class:   class,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// A FactStore holds per-function facts keyed by (analyzer, node), so
// one pass's bottom-up summaries are queryable by later passes and at
// call sites in other packages.
type FactStore struct {
	facts map[factKey]any
}

type factKey struct {
	analyzer string
	node     *FuncNode
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{facts: map[factKey]any{}} }

// Set records a fact for node under the analyzer's namespace.
func (s *FactStore) Set(analyzer string, node *FuncNode, fact any) {
	s.facts[factKey{analyzer, node}] = fact
}

// Get returns the fact recorded for node by analyzer, or nil.
func (s *FactStore) Get(analyzer string, node *FuncNode) any {
	return s.facts[factKey{analyzer, node}]
}

// Loaded returns every package this loader has resolved so far —
// the requested packages plus module-local imports pulled in to
// type-check them — sorted by import path.
func (l *Loader) Loaded() []*Package {
	pkgs := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs
}
