// Package errtaxonomy enforces the three-error taxonomy the robustness
// extensions introduced: sim.ErrDeadline (a simulated-cycle budget
// expired, the operation is resumable), net.ErrPartitioned (the torus
// is disconnected, the access can never complete), and mem.ErrPoisoned
// (an uncorrectable memory error reached a consumer). The three demand
// different responses — retry wider, fail fast, roll back — so callers
// of the fallible shell/splitc/am/mem APIs must keep the verdicts
// distinguishable all the way up the stack. Concretely the pass flags:
//
//   - comparing an error against a taxonomy sentinel with == or !=
//     (wrapped errors — DeadlineError, PartitionError, PoisonError —
//     make the comparison silently false; use errors.Is);
//   - discriminating errors by text: err.Error() compared against a
//     string, or fed to strings.Contains and friends (messages are not
//     API; the sentinels are);
//   - discarding the error result of a fallible shell/splitc/am/mem
//     call outright (as a statement, or assigned to _): the discarded
//     value may be a poison verdict;
//   - an `if err != nil` branch that never mentions err again: the
//     verdict is observed and then dropped on the floor, which turns a
//     poisoned read into a silent failure. Propagating (return err,
//     fmt.Errorf("...: %w", err)) or embedding it in a panic message
//     both count as keeping the verdict.
package errtaxonomy

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the errtaxonomy pass.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc:  "deadline/partition/poison verdicts must be discriminated with errors.Is and never discarded or string-matched",
	Run:  run,
}

// sentinels are the taxonomy roots, keyed by defining package path.
var sentinels = map[string]map[string]bool{
	"repro/internal/sim":   {"ErrDeadline": true},
	"repro/internal/net":   {"ErrPartitioned": true},
	"repro/internal/mem":   {"ErrPoisoned": true},
	"repro/internal/serve": {"ErrShed": true, "ErrJobDeadline": true, "ErrJournalDegraded": true, "ErrQuotaExceeded": true},
}

// falliblePkgs are the packages whose error returns carry taxonomy
// verdicts; discarding one is always a bug or a documented waiver.
var falliblePkgs = map[string]bool{
	"repro/internal/shell":  true,
	"repro/internal/splitc": true,
	"repro/internal/am":     true,
	"repro/internal/mem":    true,
	"repro/internal/serve":  true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.CallExpr:
				checkStringMatch(pass, n)
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkDiscard(pass, call, n)
				}
			case *ast.AssignStmt:
				checkBlankError(pass, n)
			case *ast.IfStmt:
				checkSwallow(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkComparison flags ==/!= against a taxonomy sentinel.
func checkComparison(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		if name, pkg := sentinelUse(pass, side); name != "" {
			pass.ReportClassf(b.Pos(), "sentinel-compare",
				"%s compared with %s — wrapped %s values make this silently false; use errors.Is(err, %s.%s)", name, b.Op, name, pkg, name)
			return
		}
	}
	// err.Error() == "..." — taxonomy by message text.
	for _, side := range []ast.Expr{b.X, b.Y} {
		if isErrorTextCall(pass, side) {
			pass.ReportClassf(b.Pos(), "msg-compare",
				"error discriminated by message text — messages are not API; use errors.Is against sim.ErrDeadline/net.ErrPartitioned/mem.ErrPoisoned")
			return
		}
	}
}

// checkStringMatch flags strings.* matching over err.Error().
func checkStringMatch(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if !analysis.IsPkgFunc(fn, "strings", "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index", "Count") {
		return
	}
	for _, a := range call.Args {
		if isErrorTextCall(pass, a) {
			pass.ReportClassf(call.Pos(), "msg-compare",
				"strings.%s over err.Error() — error messages are not API; discriminate with errors.Is against the taxonomy sentinels", fn.Name())
			return
		}
	}
}

// checkDiscard flags a fallible call whose results are thrown away as a
// bare statement.
func checkDiscard(pass *analysis.Pass, call *ast.CallExpr, stmt *ast.ExprStmt) {
	if fn := fallibleCallee(pass, call); fn != nil {
		pass.ReportClassf(stmt.Pos(), "err-discard",
			"error result of %s.%s discarded — it may carry a deadline/partition/poison verdict; handle or propagate it", fn.Pkg().Name(), fn.Name())
	}
}

// checkBlankError flags assigning a fallible call's error to the blank
// identifier.
func checkBlankError(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := fallibleCallee(pass, call)
	if fn == nil {
		return
	}
	// The error is the last result; its LHS slot is the last one.
	last := as.Lhs[len(as.Lhs)-1]
	if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "_" {
		pass.ReportClassf(as.Pos(), "err-discard",
			"error result of %s.%s assigned to _ — it may carry a deadline/partition/poison verdict; handle or propagate it", fn.Pkg().Name(), fn.Name())
	}
}

// checkSwallow flags `if err != nil { ... }` bodies that never mention
// err: the verdict is tested and then dropped.
func checkSwallow(pass *analysis.Pass, s *ast.IfStmt) {
	cond, ok := ast.Unparen(s.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ {
		return
	}
	var errIdent *ast.Ident
	for _, side := range [2][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
		x, y := side[0], side[1]
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok {
			continue
		}
		if nilID, ok := ast.Unparen(y).(*ast.Ident); !ok || nilID.Name != "nil" {
			continue
		}
		if analysis.IsErrorType(pass.TypesInfo.TypeOf(id)) {
			errIdent = id
		}
	}
	if errIdent == nil {
		return
	}
	obj := pass.TypesInfo.ObjectOf(errIdent)
	if obj == nil {
		return
	}
	used := false
	ast.Inspect(s.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			used = true
		}
		return !used
	})
	if !used {
		pass.ReportClassf(s.Pos(), "verdict-drop",
			"%s is checked non-nil but its verdict is dropped — a poisoned read would fail silently; discriminate with errors.Is or propagate the error", errIdent.Name)
	}
}

// fallibleCallee returns the callee when call targets a fallible
// shell/splitc/am/mem function whose last result is an error.
func fallibleCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || !falliblePkgs[fn.Pkg().Path()] {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	if !analysis.IsErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return nil
	}
	return fn
}

// sentinelUse resolves e to a taxonomy sentinel, returning its name and
// defining package name ("", "" otherwise).
func sentinelUse(pass *analysis.Pass, e ast.Expr) (name, pkgName string) {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[e.Sel]
	default:
		return "", ""
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return "", ""
	}
	if names, ok := sentinels[v.Pkg().Path()]; ok && names[v.Name()] {
		return v.Name(), v.Pkg().Name()
	}
	return "", ""
}

// isErrorTextCall reports whether e is a call of Error() on an error
// value.
func isErrorTextCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return analysis.IsErrorType(pass.TypesInfo.TypeOf(sel.X))
}
