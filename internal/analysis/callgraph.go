// Whole-module call graph: the interprocedural substrate under the
// sharedstate, hotalloc, and (upgraded) splitphase passes.
//
// Every function declaration and every function literal in the loaded
// packages becomes a FuncNode. Edges are resolved three ways:
//
//   - EdgeCall, static: the callee expression names a *types.Func
//     declared in the module (plain call, method call, immediately
//     invoked literal);
//   - EdgeCall, flow-resolved: the callee expression names a variable
//     (a func-typed parameter or local) and a function value was seen
//     flowing into that variable — a literal assigned to it, or passed
//     as the corresponding argument at some call site of the enclosing
//     function. This is one-level value flow, not a points-to analysis:
//     a func value laundered through a struct field, slice, channel, or
//     a second variable hop is not resolved (see the EdgeFlow fallback);
//   - EdgeFlow, conservative: a function value used in any non-call
//     position (passed to a call, assigned, stored, returned) gets a
//     may-invoke edge from the function whose body mentions it. EdgeFlow
//     says "this value can run if control passes through here", which is
//     what reachability consumers (sharedstate) need, and deliberately
//     does not say at which call expression — precision consumers
//     (splitphase discharge) use only EdgeCall.
//
// The builder also records the two annotations the interprocedural
// passes key on: //t3d:hotpath markers on function declarations
// (hotalloc's audit roots; literals inherit hotness from the enclosing
// function), and the spawn shape of proc-body literals — a literal
// handed to a method named Run executes once per PE (replicated), one
// handed to RunOn/Spawn/SpawnDaemon executes as a single proc.
//
// Soundness caveats are documented in DESIGN.md §16; in short the graph
// is neither sound nor complete under reflection, laundered function
// values, or dynamic dispatch through interfaces, and the passes that
// ride on it are tuned to how this tree actually writes Go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotMarker is the comment that marks a function as a measured hot
// path: hotalloc requires the function (and everything it calls, up to
// the next annotated boundary) to be allocation-free.
const HotMarker = "//t3d:hotpath"

// EdgeKind discriminates how a call edge was resolved.
type EdgeKind int

const (
	// EdgeCall is an invocation at a specific call expression, either
	// statically resolved or through one-level value flow into the
	// callee variable.
	EdgeCall EdgeKind = iota
	// EdgeFlow is a conservative may-invoke edge: the callee's value
	// escapes into the caller's body (passed, assigned, stored) and may
	// run when the caller does, but at no identified call expression.
	EdgeFlow
)

// An Edge is one resolved caller→callee relationship.
type Edge struct {
	Caller *FuncNode
	Callee *FuncNode
	// Site is the call expression for EdgeCall edges; nil for EdgeFlow.
	Site *ast.CallExpr
	Kind EdgeKind
}

// A FuncNode is one function in the module: a declaration or a literal.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Obj  *types.Func   // nil for literals
	Sig  *types.Signature
	// Parent is the innermost enclosing function for literals.
	Parent *FuncNode
	// Name is a diagnostic label: "pkg.Func", "pkg.(T).Method", or
	// "pkg.Func.func" for literals.
	Name string
	// Hot marks a //t3d:hotpath function; literals inherit it from
	// their enclosing function (the closure runs on the same path).
	Hot bool
	// SpawnAll / SpawnOne record that this node's value is handed to a
	// proc-spawning method: Run (one body replicated across every PE)
	// or RunOn/Spawn/SpawnDaemon (a single proc).
	SpawnAll bool
	SpawnOne bool

	Out []*Edge
	In  []*Edge

	scc int // SCC index; callees have smaller or equal indices
}

// Body returns the node's function body.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// SCC returns the node's strongly-connected-component index in the
// graph's bottom-up order: every EdgeCall/EdgeFlow target outside the
// node's own component has a strictly smaller index.
func (n *FuncNode) SCC() int { return n.scc }

// A CallGraph is the module-wide function graph plus its bottom-up SCC
// ordering.
type CallGraph struct {
	// Nodes lists every function in deterministic order (package path,
	// then file position).
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode

	// sccs[i] is one strongly connected component; components are in
	// bottom-up (callees-first) topological order.
	sccs [][]*FuncNode
}

// NodeFor returns the graph node for a declared function, or nil.
func (g *CallGraph) NodeFor(fn *types.Func) *FuncNode { return g.byObj[fn] }

// NodeForLit returns the graph node for a function literal, or nil.
func (g *CallGraph) NodeForLit(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// SCCs returns the strongly connected components in bottom-up order:
// by the time component i is visited, every function it calls outside
// itself lives in some component j < i.
func (g *CallGraph) SCCs() [][]*FuncNode { return g.sccs }

// BuildGraph constructs the call graph over the given packages. The
// package list is sorted by path internally, so the node order — and
// everything derived from it — is deterministic.
func BuildGraph(pkgs []*Package) *CallGraph {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	g := &CallGraph{
		byObj: map[*types.Func]*FuncNode{},
		byLit: map[*ast.FuncLit]*FuncNode{},
	}
	b := &graphBuilder{g: g, flows: map[*types.Var][]*FuncNode{}}

	// Pass 1: create nodes for every declaration and literal.
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				b.addDecl(pkg, fd)
			}
		}
	}

	// Pass 2: resolve value flow (function values into variables and
	// parameters), spawn shapes, and conservative EdgeFlow edges.
	for _, n := range g.Nodes {
		if n.Decl != nil {
			b.collectFlows(n)
		}
	}

	// Pass 3: add call edges, including flow-resolved variable calls.
	for _, n := range g.Nodes {
		if n.Decl != nil {
			b.addCallEdges(n)
		}
	}

	g.computeSCCs()
	return g
}

type graphBuilder struct {
	g *CallGraph
	// flows maps a func-typed variable (parameter or local) to the
	// function values observed flowing into it.
	flows map[*types.Var][]*FuncNode
}

// addDecl creates the node for fd and, recursively, nodes for every
// literal in its body (parented to the innermost enclosing function).
func (b *graphBuilder) addDecl(pkg *Package, fd *ast.FuncDecl) {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	n := &FuncNode{
		Pkg:  pkg,
		Decl: fd,
		Obj:  obj,
		Name: declName(pkg, fd),
		Hot:  hasHotMarker(fd.Doc),
	}
	if obj != nil {
		n.Sig, _ = obj.Type().(*types.Signature)
		b.g.byObj[obj] = n
	}
	b.g.Nodes = append(b.g.Nodes, n)
	b.addLits(pkg, n, fd.Body)
}

// addLits creates nodes for literals directly inside parent's body,
// then recurses into each literal for deeper nesting.
func (b *graphBuilder) addLits(pkg *Package, parent *FuncNode, body *ast.BlockStmt) {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(nn ast.Node) bool {
		if lit, ok := nn.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false // nested literals handled by recursion
		}
		return true
	})
	for i, lit := range lits {
		ln := &FuncNode{
			Pkg:    pkg,
			Lit:    lit,
			Parent: parent,
			Name:   fmt.Sprintf("%s.func%d", parent.Name, i+1),
			Hot:    parent.Hot, // a closure on a hot path is hot
		}
		if sig, ok := pkg.Info.TypeOf(lit).(*types.Signature); ok {
			ln.Sig = sig
		}
		b.g.byLit[lit] = ln
		b.g.Nodes = append(b.g.Nodes, ln)
		b.addLits(pkg, ln, lit.Body)
	}
}

// funcValue resolves an expression that denotes a function value — a
// literal or a (possibly selector-qualified) reference to a module
// function — to its node, or nil.
func (b *graphBuilder) funcValue(pkg *Package, e ast.Expr) *FuncNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return b.g.byLit[e]
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return b.g.byObj[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return b.g.byObj[fn] // method value: conservative may-invoke
		}
	}
	return nil
}

// enclosing returns the node whose body most tightly contains pos.
func (b *graphBuilder) enclosing(root *FuncNode, pos token.Pos) *FuncNode {
	best := root
	for _, n := range b.g.Nodes {
		if n.Pkg == root.Pkg && n.Lit != nil && n.Lit.Pos() <= pos && pos < n.Lit.End() {
			if best.Lit == nil || (best.Lit.Pos() <= n.Lit.Pos() && n.Lit.End() <= best.Lit.End()) {
				best = n
			}
		}
	}
	return best
}

// spawnAllNames are methods that replicate a proc body across every PE
// (splitc Runtime.Run/RunErr, machine T3D.Run/RunErr,
// Recovery.Run/RunRecoverable); spawnOneNames start a single proc. The
// distinction feeds sharedstate's root weighting: one literal handed to
// Run is already "more than one proc body" for anything it captures.
// Engine.Run/RunErr take no function argument, so listing the names is
// harmless there.
var spawnAllNames = map[string]bool{"Run": true, "RunErr": true, "RunRecoverable": true}
var spawnOneNames = map[string]bool{"RunOn": true, "Spawn": true, "SpawnDaemon": true}

// collectFlows walks one declaration (literals included — flow facts
// attach to variables, which don't care about nesting) recording:
// function values assigned to variables, function values passed as
// arguments (into the callee's parameter when the callee is a module
// function), spawn shapes, and conservative EdgeFlow edges for any
// function value escaping in non-call position.
func (b *graphBuilder) collectFlows(root *FuncNode) {
	pkg := root.Pkg
	ast.Inspect(root.Decl, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.AssignStmt:
			for i, rhs := range nn.Rhs {
				if i >= len(nn.Lhs) {
					break
				}
				fn := b.funcValue(pkg, rhs)
				if fn == nil {
					continue
				}
				if id, ok := ast.Unparen(nn.Lhs[i]).(*ast.Ident); ok {
					if v, ok := pkg.Info.ObjectOf(id).(*types.Var); ok {
						b.flows[v] = append(b.flows[v], fn)
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range nn.Values {
				fn := b.funcValue(pkg, rhs)
				if fn == nil || i >= len(nn.Names) {
					continue
				}
				if v, ok := pkg.Info.Defs[nn.Names[i]].(*types.Var); ok {
					b.flows[v] = append(b.flows[v], fn)
				}
			}
		case *ast.CallExpr:
			callee := CalleeIn(pkg.Info, nn)
			calleeNode := b.g.byObj[callee]
			for i, arg := range nn.Args {
				fn := b.funcValue(pkg, arg)
				if fn == nil {
					continue
				}
				// Spawn shape: a proc body handed to Run executes once
				// per PE; RunOn/Spawn run it as a single proc.
				if callee != nil {
					if spawnAllNames[callee.Name()] {
						fn.SpawnAll = true
					} else if spawnOneNames[callee.Name()] {
						fn.SpawnOne = true
					}
				}
				// Flow into the callee's parameter object, so calls
				// through that parameter resolve to fn.
				if calleeNode != nil && calleeNode.Sig != nil {
					params := calleeNode.Sig.Params()
					if i < params.Len() {
						b.flows[params.At(i)] = append(b.flows[params.At(i)], fn)
					} else if calleeNode.Sig.Variadic() && params.Len() > 0 {
						b.flows[params.At(params.Len()-1)] = append(b.flows[params.At(params.Len()-1)], fn)
					}
				}
			}
		}
		return true
	})

	// Conservative EdgeFlow: any function value mentioned outside a
	// call's callee position may run when its mentioning function does.
	ast.Inspect(root.Decl, func(nn ast.Node) bool {
		switch e := nn.(type) {
		case *ast.FuncLit:
			ln := b.g.byLit[e]
			if ln != nil && ln.Parent != nil {
				b.addEdge(ln.Parent, ln, nil, EdgeFlow)
			}
			return true
		case *ast.CallExpr:
			for _, arg := range e.Args {
				if fn := b.funcValue(pkg, arg); fn != nil && fn.Decl != nil {
					from := b.enclosing(root, e.Pos())
					b.addEdge(from, fn, nil, EdgeFlow)
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range e.Rhs {
				if fn := b.funcValue(pkg, rhs); fn != nil && fn.Decl != nil {
					from := b.enclosing(root, e.Pos())
					b.addEdge(from, fn, nil, EdgeFlow)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				if fn := b.funcValue(pkg, r); fn != nil {
					from := b.enclosing(root, e.Pos())
					b.addEdge(from, fn, nil, EdgeFlow)
				}
			}
		}
		return true
	})
}

// addCallEdges resolves every call expression under root (nested
// literals included; the edge's caller is the innermost enclosing
// function) to EdgeCall edges.
func (b *graphBuilder) addCallEdges(root *FuncNode) {
	pkg := root.Pkg
	ast.Inspect(root.Decl, func(nn ast.Node) bool {
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		caller := b.enclosing(root, call.Pos())
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.FuncLit:
			if ln := b.g.byLit[fun]; ln != nil {
				b.addEdge(caller, ln, call, EdgeCall)
			}
			return true
		case *ast.Ident:
			switch obj := pkg.Info.Uses[fun].(type) {
			case *types.Func:
				if cn := b.g.byObj[obj]; cn != nil {
					b.addEdge(caller, cn, call, EdgeCall)
				}
			case *types.Var:
				for _, fn := range b.flows[obj] {
					b.addEdge(caller, fn, call, EdgeCall)
				}
			}
		case *ast.SelectorExpr:
			if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				if cn := b.g.byObj[obj]; cn != nil {
					b.addEdge(caller, cn, call, EdgeCall)
				}
			}
		}
		return true
	})
}

func (b *graphBuilder) addEdge(caller, callee *FuncNode, site *ast.CallExpr, kind EdgeKind) {
	if caller == nil || callee == nil {
		return
	}
	for _, e := range caller.Out {
		if e.Callee == callee && e.Site == site && e.Kind == kind {
			return
		}
	}
	e := &Edge{Caller: caller, Callee: callee, Site: site, Kind: kind}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// CallSites returns the EdgeCall edges targeting n — the places the
// graph can name where n is invoked. EdgeFlow edges are excluded: they
// say n may run, not where.
func (n *FuncNode) CallSites() []*Edge {
	var out []*Edge
	for _, e := range n.In {
		if e.Kind == EdgeCall {
			out = append(out, e)
		}
	}
	return out
}

// computeSCCs runs Tarjan's algorithm (iterative) over the graph and
// stores components in bottom-up topological order.
func (g *CallGraph) computeSCCs() {
	index := map[*FuncNode]int{}
	low := map[*FuncNode]int{}
	onStack := map[*FuncNode]bool{}
	var stack []*FuncNode
	next := 0

	type frame struct {
		n  *FuncNode
		ei int
	}
	var visit func(root *FuncNode)
	visit = func(root *FuncNode) {
		frames := []frame{{n: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(f.n.Out) {
				w := f.n.Out[f.ei].Callee
				f.ei++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{n: w})
				} else if onStack[w] {
					if index[w] < low[f.n] {
						low[f.n] = index[w]
					}
				}
				continue
			}
			// f.n finished.
			if low[f.n] == index[f.n] {
				var comp []*FuncNode
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.n {
						break
					}
				}
				for _, w := range comp {
					w.scc = len(g.sccs)
				}
				g.sccs = append(g.sccs, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].n
				if low[f.n] < low[p] {
					low[p] = low[f.n]
				}
			}
		}
	}
	for _, n := range g.Nodes {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation — which for a call graph is exactly bottom-up
	// (callees before callers). Keep it.
}

// declName renders a package-qualified function name for diagnostics.
func declName(pkg *Package, fd *ast.FuncDecl) string {
	base := pkg.Types.Name()
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return fmt.Sprintf("%s.(%s).%s", base, id.Name, fd.Name.Name)
		}
		if idx, ok := t.(*ast.IndexExpr); ok {
			if id, ok := idx.X.(*ast.Ident); ok {
				return fmt.Sprintf("%s.(%s).%s", base, id.Name, fd.Name.Name)
			}
		}
	}
	return base + "." + fd.Name.Name
}

func hasHotMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == HotMarker || strings.HasPrefix(text, HotMarker+" ") {
			return true
		}
	}
	return false
}

// CalleeIn resolves the *types.Func a call expression invokes using the
// given type info, or nil for calls through function-typed variables,
// builtins, and conversions.
func CalleeIn(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}
