package splitphase_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/splitphase"
)

func fixtures(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestGolden checks every violation kind against bad.go and the
// blessed real-tree patterns in ok.go (which must stay silent).
func TestGolden(t *testing.T) {
	analysistest.Run(t, fixtures(t), splitphase.Analyzer, "repro/internal/fixsplit")
}

// TestRuntimeExempt proves repro/internal/splitc itself is out of
// scope: the runtime that implements Sync is not a client of its own
// discipline. The stub package stands in for the real one.
func TestRuntimeExempt(t *testing.T) {
	analysistest.Run(t, fixtures(t), splitphase.Analyzer, "repro/internal/splitc")
}
