// Package splitphase enforces the Split-C sync-counter discipline from
// the paper, statically: every split-phase operation a function issues
// (Ctx.Get, Put, BulkGet, BulkPut) must be settled by a dominating
// Sync, SyncWithin, AllStoreSync, or Barrier before the function can
// return, and the destination of a Get must not be read locally while
// the get is still in flight.
//
// The paper's Split-C compiler implements split-phase assignments by
// incrementing a per-processor sync counter at issue and spinning on it
// at the sync point; code motion between the two is what buys the
// latency tolerance, and reading the landing zone before the counter
// drains is the canonical miscompilation. This pass is the
// intraprocedural shadow of that counter: it tracks may-be-unsettled
// operations along every control-flow path.
//
// Approximations, chosen to match how the tree actually writes Split-C
// (see internal/analysis/testdata/src/repro/internal/fixsplit/ok.go for
// the blessed patterns):
//
//   - Any sync operation settles every pending operation (the runtime
//     distinguishes get/put/store counters; the lint does not).
//   - Ctx.WithDeadline(budget, fn) counts as a sync when fn's body
//     contains a sync call; the body is also analyzed on its own.
//   - A function that defers a sync is exempt from exit checks.
//   - A "local read" is a call to a method named Load64, Load32, Load8,
//     ReadWord, or ReadLocal — the CPU/memory local-access surface.
//   - Functions that intentionally return with operations in flight
//     (an interpreter dispatching one instruction per call, a helper
//     settled by its caller's barrier) carry a //lint:allow splitphase
//     comment stating whose sync settles them.
//
// Package repro/internal/splitc itself is exempt: the runtime that
// implements Sync cannot be a client of its own discipline.
package splitphase

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the splitphase pass.
var Analyzer = &analysis.Analyzer{
	Name: "splitphase",
	Doc:  "split-phase Get/Put must be settled by a dominating sync; Get destinations must not be read before the sync",
	Run:  run,
}

const splitcPath = "repro/internal/splitc"

var issueOps = map[string]bool{"Get": true, "Put": true, "BulkGet": true, "BulkPut": true}
var syncOps = map[string]bool{"Sync": true, "SyncWithin": true, "AllStoreSync": true, "Barrier": true}
var localReadNames = map[string]bool{
	"Load64": true, "Load32": true, "Load8": true, "ReadWord": true, "ReadLocal": true,
}

func run(pass *analysis.Pass) error {
	if pass.Path == splitcPath {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fc := &funcCtx{pass: pass, reported: map[ast.Node]bool{}}
				fc.analyzeBody(fd.Body)
			}
		}
	}
	return nil
}

// A pendingOp is one issued, not-yet-settled split-phase operation.
type pendingOp struct {
	call *ast.CallExpr
	op   string
	dst  types.Object // root variable of the Get/BulkGet destination, if any
}

// state is the may-be-unsettled set along one control-flow path.
type state struct {
	pending     []*pendingOp
	unreachable bool
}

func (s state) clone() state {
	return state{pending: append([]*pendingOp(nil), s.pending...), unreachable: s.unreachable}
}

// merge joins path states: an operation is settled only if it is
// settled on every reachable incoming path.
func merge(states ...state) state {
	out := state{unreachable: true}
	seen := map[*pendingOp]bool{}
	for _, s := range states {
		if s.unreachable {
			continue
		}
		out.unreachable = false
		for _, p := range s.pending {
			if !seen[p] {
				seen[p] = true
				out.pending = append(out.pending, p)
			}
		}
	}
	return out
}

type funcCtx struct {
	pass      *analysis.Pass
	reported  map[ast.Node]bool
	deferSync bool
	// breaks collects the states flowing into the exit of the
	// innermost breakable statement (loop, switch, select).
	breaks []*[]state
}

// analyzeBody checks one function body with a fresh discipline state.
// Nested function literals reach here too: each function owns its own
// sync obligations.
func (fc *funcCtx) analyzeBody(body *ast.BlockStmt) {
	inner := &funcCtx{pass: fc.pass, reported: fc.reported}
	out := inner.stmt(body, state{})
	if !out.unreachable && !inner.deferSync {
		inner.reportPending(out)
	}
}

func (fc *funcCtx) reportPending(s state) {
	for _, p := range s.pending {
		if fc.reported[p.call] {
			continue
		}
		fc.reported[p.call] = true
		fc.pass.Reportf(p.call.Pos(),
			"split-phase %s is not settled by a dominating Sync/SyncWithin/AllStoreSync/Barrier on some path to function exit (Split-C sync-counter discipline)", p.op)
	}
}

func (fc *funcCtx) stmt(s ast.Stmt, in state) state {
	if s == nil {
		return in
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			in = fc.stmt(st, in)
		}
		return in
	case *ast.ExprStmt:
		fc.expr(s.X, &in)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && fc.terminates(call) {
			in.unreachable = true
		}
		return in
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			fc.expr(e, &in)
		}
		for _, e := range s.Lhs {
			fc.expr(e, &in)
		}
		return in
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fc.expr(v, &in)
					}
				}
			}
		}
		return in
	case *ast.IncDecStmt:
		fc.expr(s.X, &in)
		return in
	case *ast.SendStmt:
		fc.expr(s.Chan, &in)
		fc.expr(s.Value, &in)
		return in
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			fc.expr(a, &in)
		}
		fc.expr(s.Call.Fun, &in)
		return in
	case *ast.DeferStmt:
		if fn := fc.pass.CalleeFunc(s.Call); fn != nil && isCtxMethod(fn) && syncOps[fn.Name()] {
			fc.deferSync = true
		}
		for _, a := range s.Call.Args {
			fc.expr(a, &in)
		}
		return in
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			fc.expr(e, &in)
		}
		if !in.unreachable && !fc.deferSync {
			fc.reportPending(in)
		}
		in.unreachable = true
		return in
	case *ast.IfStmt:
		in = fc.stmt(s.Init, in)
		fc.expr(s.Cond, &in)
		then := fc.stmt(s.Body, in.clone())
		if s.Else != nil {
			els := fc.stmt(s.Else, in.clone())
			return merge(then, els)
		}
		return merge(then, in)
	case *ast.ForStmt:
		in = fc.stmt(s.Init, in)
		fc.expr(s.Cond, &in)
		exits := fc.pushBreaks()
		body := fc.stmt(s.Body, in.clone())
		body = fc.stmt(s.Post, body)
		fc.popBreaks()
		if s.Cond == nil {
			// `for {}` only exits through break.
			return merge(*exits...)
		}
		return merge(append(*exits, in, body)...)
	case *ast.RangeStmt:
		fc.expr(s.X, &in)
		exits := fc.pushBreaks()
		body := fc.stmt(s.Body, in.clone())
		fc.popBreaks()
		return merge(append(*exits, in, body)...)
	case *ast.SwitchStmt:
		in = fc.stmt(s.Init, in)
		fc.expr(s.Tag, &in)
		return fc.clauses(s.Body, in)
	case *ast.TypeSwitchStmt:
		in = fc.stmt(s.Init, in)
		in = fc.stmt(s.Assign, in)
		return fc.clauses(s.Body, in)
	case *ast.SelectStmt:
		return fc.clauses(s.Body, in)
	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			if n := len(fc.breaks); n > 0 {
				t := fc.breaks[n-1]
				*t = append(*t, in.clone())
			}
		case "goto":
			// Conservative blind spot: goto paths are not tracked.
		}
		in.unreachable = true
		return in
	case *ast.LabeledStmt:
		return fc.stmt(s.Stmt, in)
	default:
		return in
	}
}

// clauses merges the bodies of switch/select clauses. Without a default
// (or in a select), the zero-clause path also flows through.
func (fc *funcCtx) clauses(body *ast.BlockStmt, in state) state {
	exits := fc.pushBreaks()
	outs := []state{}
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				fc.expr(e, &in)
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			}
			stmts = cs.Body
		}
		st := in.clone()
		for _, s := range stmts {
			st = fc.stmt(s, st)
		}
		outs = append(outs, st)
	}
	fc.popBreaks()
	if !hasDefault {
		outs = append(outs, in)
	}
	return merge(append(*exits, outs...)...)
}

func (fc *funcCtx) pushBreaks() *[]state {
	t := &[]state{}
	fc.breaks = append(fc.breaks, t)
	return t
}

func (fc *funcCtx) popBreaks() { fc.breaks = fc.breaks[:len(fc.breaks)-1] }

// expr walks an expression, applying call effects in evaluation order
// and descending into function literals with fresh discipline state.
func (fc *funcCtx) expr(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			fc.analyzeBody(n.Body)
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				fc.expr(sel.X, st)
			}
			for _, a := range n.Args {
				fc.expr(a, st)
			}
			fc.applyCall(n, st)
			return false
		}
		return true
	})
}

func (fc *funcCtx) applyCall(call *ast.CallExpr, st *state) {
	fn := fc.pass.CalleeFunc(call)
	if fn == nil {
		return
	}
	if isCtxMethod(fn) {
		name := fn.Name()
		switch {
		case issueOps[name]:
			p := &pendingOp{call: call, op: name}
			if (name == "Get" || name == "BulkGet") && len(call.Args) > 0 {
				p.dst = rootVar(fc.pass, call.Args[0])
			}
			st.pending = append(st.pending, p)
			return
		case syncOps[name]:
			st.pending = nil
			return
		case name == "WithDeadline":
			if litContainsSync(fc.pass, call) {
				st.pending = nil
			}
			return
		}
	}
	// Local reads of an in-flight Get destination.
	if _, tn := analysis.ReceiverNamed(fn); tn != "" && localReadNames[fn.Name()] {
		for _, a := range call.Args {
			obj := rootVar(fc.pass, a)
			if obj == nil {
				continue
			}
			for _, p := range st.pending {
				if p.dst != nil && p.dst == obj && !fc.reported[call] {
					fc.reported[call] = true
					fc.pass.Reportf(call.Pos(),
						"local read of %s, the destination of an un-synced %s — the transfer may not have landed; Sync first", obj.Name(), p.op)
				}
			}
		}
	}
}

// terminates reports whether call never returns (panic, os.Exit).
func (fc *funcCtx) terminates(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := fc.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := fc.pass.CalleeFunc(call)
	return analysis.IsPkgFunc(fn, "os", "Exit") ||
		analysis.IsPkgFunc(fn, "log", "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln")
}

func isCtxMethod(fn *types.Func) bool {
	pkg, tn := analysis.ReceiverNamed(fn)
	return pkg == splitcPath && tn == "Ctx"
}

// litContainsSync reports whether any function-literal argument of call
// syntactically contains a sync operation.
func litContainsSync(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, a := range call.Args {
		lit, ok := a.(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if fn := pass.CalleeFunc(c); fn != nil && isCtxMethod(fn) && syncOps[fn.Name()] {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// rootVar returns the first variable mentioned in e — the "base" of a
// destination expression like dst+int64(i)*8.
func rootVar(pass *analysis.Pass, e ast.Expr) types.Object {
	var obj types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				obj = v
				return false
			}
		}
		return true
	})
	return obj
}
