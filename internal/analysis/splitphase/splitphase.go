// Package splitphase enforces the Split-C sync-counter discipline from
// the paper, statically: every split-phase operation a function issues
// (Ctx.Get, Put, BulkGet, BulkPut) must be settled by a dominating
// Sync, SyncWithin, AllStoreSync, or Barrier before the operation can
// escape the program — and the destination of a Get must not be read
// locally while the get is still in flight.
//
// The paper's Split-C compiler implements split-phase assignments by
// incrementing a per-processor sync counter at issue and spinning on it
// at the sync point; code motion between the two is what buys the
// latency tolerance, and reading the landing zone before the counter
// drains is the canonical miscompilation. This pass is the static
// shadow of that counter — and since the counter is per-processor, not
// per-function, the shadow is interprocedural: a helper that issues a
// Get and a caller that performs the dominating Sync are analyzed
// together through the module call graph, instead of the helper
// carrying a whole-function exemption.
//
// Mechanically, each function is summarized bottom-up over the call
// graph's SCCs with two facts:
//
//   - alwaysSyncs: every reachable path through the body executes at
//     least one sync (a deferred sync counts, as does a call to a
//     callee that alwaysSyncs). A call to such a function settles the
//     caller's earlier pending operations — the runtime counter does
//     not care which frame spins on it.
//   - exitOrigins: the issue sites (own, or inherited from callees)
//     that may still be unsettled when the function returns.
//
// A caller that invokes a function with exitOrigins inherits those
// obligations into its own path state; a later sync settles them. An
// origin is reported — at its own issue site, exactly where the
// intraprocedural pass reported it — only when some function carrying
// it in its summary escapes analysis unresolved: it has no in-module
// caller, it is spawned as a proc body (Run/RunOn/Spawn: the runtime
// will not sync for it), or it is invoked from inside the exempt
// splitc runtime.
//
// Approximations, chosen to match how the tree actually writes Split-C
// (see internal/analysis/testdata/src/repro/internal/fixsplit/ok.go for
// the blessed patterns):
//
//   - Any sync operation settles every pending operation (the runtime
//     distinguishes get/put/store counters; the lint does not).
//   - Ctx.WithDeadline(budget, fn) counts as a sync when fn is known to
//     sync (by summary, or syntactically for literals).
//   - Calls within one SCC (recursion) are treated as no-ops; mutual
//     recursion that launders sync obligations is a documented blind
//     spot (DESIGN.md §16).
//   - A "local read" is a call to a method named Load64, Load32, Load8,
//     ReadWord, or ReadLocal — the CPU/memory local-access surface.
//     The in-flight-destination check stays intraprocedural: a Get
//     destination handed to another function is not tracked.
//   - Functions whose in-flight exits are intentional and settled
//     nowhere the graph can see (an interpreter dispatching one
//     instruction per call, settled by a *program-level* sync opcode)
//     carry a //lint:allow splitphase comment stating whose sync
//     settles them.
//
// Package repro/internal/splitc itself is exempt: the runtime that
// implements Sync cannot be a client of its own discipline.
package splitphase

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the splitphase pass.
var Analyzer = &analysis.Analyzer{
	Name:      "splitphase",
	Doc:       "split-phase Get/Put must be settled by a dominating sync, own or a caller's; Get destinations must not be read before the sync",
	RunModule: runModule,
}

// passName duplicates Analyzer.Name for use inside run functions (a
// direct reference would be an initialization cycle).
const passName = "splitphase"

const splitcPath = "repro/internal/splitc"

var issueOps = map[string]bool{"Get": true, "Put": true, "BulkGet": true, "BulkPut": true}
var syncOps = map[string]bool{"Sync": true, "SyncWithin": true, "AllStoreSync": true, "Barrier": true}
var localReadNames = map[string]bool{
	"Load64": true, "Load32": true, "Load8": true, "ReadWord": true, "ReadLocal": true,
}

// An origin is one split-phase issue site: the unit of blame. Whether
// it is reported depends on the whole module; where is fixed here.
type origin struct {
	node *analysis.FuncNode
	call *ast.CallExpr
	op   string
}

// A fact is one function's bottom-up summary.
type fact struct {
	alwaysSyncs bool
	exitOrigins []*origin
}

func runModule(mp *analysis.ModulePass) error {
	m := mp.Module
	sp := &splitPass{
		mp:         mp,
		unresolved: map[*origin]bool{},
		reported:   map[ast.Node]bool{},
	}

	// Bottom-up over SCCs: callee facts exist before callers need them.
	for _, comp := range m.Graph.SCCs() {
		for _, n := range comp {
			if n.Pkg.Path == splitcPath {
				continue
			}
			sp.summarize(n)
		}
	}

	// Resolution: an origin escapes when some function carrying it in
	// its exit summary has nobody left to sync for it.
	var escaped []*origin
	for _, n := range m.Graph.Nodes {
		f, _ := m.Facts.Get(passName, n).(*fact)
		if f == nil || len(f.exitOrigins) == 0 {
			continue
		}
		if !sp.unresolvedAtExit(n) {
			continue
		}
		for _, o := range f.exitOrigins {
			if !sp.unresolved[o] {
				sp.unresolved[o] = true
				escaped = append(escaped, o)
			}
		}
	}
	sort.Slice(escaped, func(i, j int) bool { return escaped[i].call.Pos() < escaped[j].call.Pos() })
	for _, o := range escaped {
		if !m.Target(o.node.Pkg) || sp.reported[o.call] {
			continue
		}
		sp.reported[o.call] = true
		mp.ReportClassf(o.call.Pos(), "unsettled",
			"split-phase %s is not settled by a dominating Sync/SyncWithin/AllStoreSync/Barrier on some path to function exit (Split-C sync-counter discipline)", o.op)
	}
	return nil
}

type splitPass struct {
	mp         *analysis.ModulePass
	unresolved map[*origin]bool
	reported   map[ast.Node]bool
}

// unresolvedAtExit reports whether n's pending-at-exit summary escapes
// the analysis: no in-module caller will (or can) sync for it.
func (sp *splitPass) unresolvedAtExit(n *analysis.FuncNode) bool {
	// A spawned proc body returns to the scheduler, which does not sync
	// on its behalf.
	if n.SpawnAll || n.SpawnOne {
		return true
	}
	sites := n.CallSites()
	if len(sites) == 0 {
		// Called from nowhere the graph can see (tests, reflection,
		// stored function values): conservative, same as the old
		// intraprocedural verdict.
		return true
	}
	for _, e := range sites {
		if e.Caller.Pkg.Path == splitcPath {
			// Invoked by the exempt runtime (program(c) inside Run):
			// the runtime is not a client of the discipline and its
			// callbacks must settle their own operations.
			return true
		}
	}
	return false
}

// summarize runs the path-sensitive walker over one function body and
// stores its fact.
func (sp *splitPass) summarize(n *analysis.FuncNode) {
	siteCallees := map[*ast.CallExpr][]*analysis.FuncNode{}
	for _, e := range n.Out {
		if e.Kind == analysis.EdgeCall && e.Site != nil {
			siteCallees[e.Site] = append(siteCallees[e.Site], e.Callee)
		}
	}
	fc := &funcCtx{
		sp:          sp,
		node:        n,
		info:        n.Pkg.Info,
		siteCallees: siteCallees,
	}
	out := fc.stmt(n.Body(), state{})
	f := &fact{}
	exits := fc.exits
	if !out.unreachable {
		exits = append(exits, out)
	}
	f.alwaysSyncs = fc.deferSync || len(exits) > 0
	seen := map[*origin]bool{}
	for _, ex := range exits {
		if !ex.synced && !fc.deferSync {
			f.alwaysSyncs = false
		}
		if fc.deferSync {
			continue // the deferred sync settles everything at exit
		}
		for _, p := range ex.pending {
			for _, o := range p.origins {
				if !seen[o] {
					seen[o] = true
					f.exitOrigins = append(f.exitOrigins, o)
				}
			}
		}
	}
	sp.mp.Module.Facts.Set(passName, n, f)
}

// calleeFact returns the stored summary for a callee, or nil for
// unwalked (splitc), same-SCC, or out-of-module functions.
func (sp *splitPass) calleeFact(caller, callee *analysis.FuncNode) *fact {
	if callee.SCC() == caller.SCC() {
		return nil
	}
	f, _ := sp.mp.Module.Facts.Get(passName, callee).(*fact)
	return f
}

// A pendingOp is one issued, not-yet-settled split-phase operation (own
// or inherited from a callee's summary).
type pendingOp struct {
	origins []*origin
	dst     types.Object // root variable of a Get/BulkGet destination (own ops only)
	op      string
}

// state is the may-be-unsettled set along one control-flow path.
type state struct {
	pending     []*pendingOp
	synced      bool // a sync has executed on this path
	unreachable bool
}

func (s state) clone() state {
	return state{pending: append([]*pendingOp(nil), s.pending...), synced: s.synced, unreachable: s.unreachable}
}

// merge joins path states: an operation is settled — and a sync has
// happened — only if that holds on every reachable incoming path.
func merge(states ...state) state {
	out := state{unreachable: true, synced: true}
	seen := map[*pendingOp]bool{}
	for _, s := range states {
		if s.unreachable {
			continue
		}
		out.unreachable = false
		out.synced = out.synced && s.synced
		for _, p := range s.pending {
			if !seen[p] {
				seen[p] = true
				out.pending = append(out.pending, p)
			}
		}
	}
	if out.unreachable {
		out.synced = false
	}
	return out
}

type funcCtx struct {
	sp          *splitPass
	node        *analysis.FuncNode
	info        *types.Info
	siteCallees map[*ast.CallExpr][]*analysis.FuncNode
	deferSync   bool
	// exits collects the path states at every return statement; the
	// fall-off state is appended by summarize.
	exits []state
	// breaks collects the states flowing into the exit of the
	// innermost breakable statement (loop, switch, select).
	breaks []*[]state
}

func (fc *funcCtx) calleeFunc(call *ast.CallExpr) *types.Func {
	return analysis.CalleeIn(fc.info, call)
}

func (fc *funcCtx) stmt(s ast.Stmt, in state) state {
	if s == nil {
		return in
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			in = fc.stmt(st, in)
		}
		return in
	case *ast.ExprStmt:
		fc.expr(s.X, &in)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && fc.terminates(call) {
			in.unreachable = true
		}
		return in
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			fc.expr(e, &in)
		}
		for _, e := range s.Lhs {
			fc.expr(e, &in)
		}
		return in
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fc.expr(v, &in)
					}
				}
			}
		}
		return in
	case *ast.IncDecStmt:
		fc.expr(s.X, &in)
		return in
	case *ast.SendStmt:
		fc.expr(s.Chan, &in)
		fc.expr(s.Value, &in)
		return in
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			fc.expr(a, &in)
		}
		fc.expr(s.Call.Fun, &in)
		return in
	case *ast.DeferStmt:
		if fn := fc.calleeFunc(s.Call); fn != nil && isCtxMethod(fn) && syncOps[fn.Name()] {
			fc.deferSync = true
		}
		for _, a := range s.Call.Args {
			fc.expr(a, &in)
		}
		return in
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			fc.expr(e, &in)
		}
		if !in.unreachable {
			fc.exits = append(fc.exits, in.clone())
		}
		in.unreachable = true
		return in
	case *ast.IfStmt:
		in = fc.stmt(s.Init, in)
		fc.expr(s.Cond, &in)
		then := fc.stmt(s.Body, in.clone())
		if s.Else != nil {
			els := fc.stmt(s.Else, in.clone())
			return merge(then, els)
		}
		return merge(then, in)
	case *ast.ForStmt:
		in = fc.stmt(s.Init, in)
		fc.expr(s.Cond, &in)
		exits := fc.pushBreaks()
		body := fc.stmt(s.Body, in.clone())
		body = fc.stmt(s.Post, body)
		fc.popBreaks()
		if s.Cond == nil {
			// `for {}` only exits through break.
			return merge(*exits...)
		}
		return merge(append(*exits, in, body)...)
	case *ast.RangeStmt:
		fc.expr(s.X, &in)
		exits := fc.pushBreaks()
		body := fc.stmt(s.Body, in.clone())
		fc.popBreaks()
		return merge(append(*exits, in, body)...)
	case *ast.SwitchStmt:
		in = fc.stmt(s.Init, in)
		fc.expr(s.Tag, &in)
		return fc.clauses(s.Body, in)
	case *ast.TypeSwitchStmt:
		in = fc.stmt(s.Init, in)
		in = fc.stmt(s.Assign, in)
		return fc.clauses(s.Body, in)
	case *ast.SelectStmt:
		return fc.clauses(s.Body, in)
	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			if n := len(fc.breaks); n > 0 {
				t := fc.breaks[n-1]
				*t = append(*t, in.clone())
			}
		case "goto":
			// Conservative blind spot: goto paths are not tracked.
		}
		in.unreachable = true
		return in
	case *ast.LabeledStmt:
		return fc.stmt(s.Stmt, in)
	default:
		return in
	}
}

// clauses merges the bodies of switch/select clauses. Without a default
// (or in a select), the zero-clause path also flows through.
func (fc *funcCtx) clauses(body *ast.BlockStmt, in state) state {
	exits := fc.pushBreaks()
	outs := []state{}
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				fc.expr(e, &in)
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			}
			stmts = cs.Body
		}
		st := in.clone()
		for _, s := range stmts {
			st = fc.stmt(s, st)
		}
		outs = append(outs, st)
	}
	fc.popBreaks()
	if !hasDefault {
		outs = append(outs, in)
	}
	return merge(append(*exits, outs...)...)
}

func (fc *funcCtx) pushBreaks() *[]state {
	t := &[]state{}
	fc.breaks = append(fc.breaks, t)
	return t
}

func (fc *funcCtx) popBreaks() { fc.breaks = fc.breaks[:len(fc.breaks)-1] }

// expr walks an expression, applying call effects in evaluation order.
// Function literals are their own call-graph nodes, summarized
// separately — their bodies are not descended into here.
func (fc *funcCtx) expr(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				fc.expr(sel.X, st)
			}
			for _, a := range n.Args {
				fc.expr(a, st)
			}
			fc.applyCall(n, st)
			return false
		}
		return true
	})
}

// settle marks every pending operation settled on this path.
func settle(st *state) {
	st.pending = nil
	st.synced = true
}

func (fc *funcCtx) applyCall(call *ast.CallExpr, st *state) {
	fn := fc.calleeFunc(call)
	if fn != nil && isCtxMethod(fn) {
		name := fn.Name()
		switch {
		case issueOps[name]:
			o := &origin{node: fc.node, call: call, op: name}
			p := &pendingOp{origins: []*origin{o}, op: name}
			if (name == "Get" || name == "BulkGet") && len(call.Args) > 0 {
				p.dst = rootVarOf(fc.info, call.Args[0])
			}
			st.pending = append(st.pending, p)
			return
		case syncOps[name]:
			settle(st)
			return
		case name == "WithDeadline":
			if fc.argSyncs(call) {
				settle(st)
			}
			return
		}
	}
	// Local reads of an in-flight Get destination (own ops only: the
	// summary does not carry destinations across frames).
	if fn != nil {
		if _, tn := analysis.ReceiverNamed(fn); tn != "" && localReadNames[fn.Name()] {
			for _, a := range call.Args {
				obj := rootVarOf(fc.info, a)
				if obj == nil {
					continue
				}
				for _, p := range st.pending {
					if p.dst != nil && p.dst == obj && !fc.sp.reported[call] {
						fc.sp.reported[call] = true
						if fc.sp.mp.Module.Target(fc.node.Pkg) {
							fc.sp.mp.ReportClassf(call.Pos(), "early-read",
								"local read of %s, the destination of an un-synced %s — the transfer may not have landed; Sync first", obj.Name(), p.op)
						}
					}
				}
			}
		}
	}
	// Module callees, by summary: a callee that always syncs settles
	// the caller's counter; a callee that may exit pending hands its
	// obligations to this frame.
	callees := fc.siteCallees[call]
	if len(callees) == 0 {
		return
	}
	allSync := true
	var inherited []*origin
	for _, cn := range callees {
		f := fc.sp.calleeFact(fc.node, cn)
		if f == nil {
			allSync = false
			continue
		}
		if !f.alwaysSyncs {
			allSync = false
		}
		inherited = append(inherited, f.exitOrigins...)
	}
	if allSync {
		settle(st)
		return
	}
	if len(inherited) > 0 {
		st.pending = append(st.pending, &pendingOp{origins: inherited, op: "call"})
	}
}

// argSyncs reports whether a WithDeadline-style call's function
// argument is known to sync: by summary when the argument resolves to a
// module function or literal, or syntactically as a fallback.
func (fc *funcCtx) argSyncs(call *ast.CallExpr) bool {
	g := fc.sp.mp.Module.Graph
	for _, a := range call.Args {
		var n *analysis.FuncNode
		switch a := ast.Unparen(a).(type) {
		case *ast.FuncLit:
			n = g.NodeForLit(a)
		case *ast.Ident:
			if f, ok := fc.info.Uses[a].(*types.Func); ok {
				n = g.NodeFor(f)
			}
		}
		if n != nil {
			if f := fc.sp.calleeFact(fc.node, n); f != nil && f.alwaysSyncs {
				return true
			}
		}
	}
	return litContainsSync(fc.info, call)
}

// terminates reports whether call never returns (panic, os.Exit).
func (fc *funcCtx) terminates(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := fc.info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := fc.calleeFunc(call)
	return analysis.IsPkgFunc(fn, "os", "Exit") ||
		analysis.IsPkgFunc(fn, "log", "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln")
}

func isCtxMethod(fn *types.Func) bool {
	pkg, tn := analysis.ReceiverNamed(fn)
	return pkg == splitcPath && tn == "Ctx"
}

// litContainsSync reports whether any function-literal argument of call
// syntactically contains a sync operation.
func litContainsSync(info *types.Info, call *ast.CallExpr) bool {
	found := false
	for _, a := range call.Args {
		lit, ok := a.(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if fn := analysis.CalleeIn(info, c); fn != nil && isCtxMethod(fn) && syncOps[fn.Name()] {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// rootVarOf returns the first variable mentioned in e — the "base" of a
// destination expression like dst+int64(i)*8.
func rootVarOf(info *types.Info, e ast.Expr) types.Object {
	var obj types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				obj = v
				return false
			}
		}
		return true
	})
	return obj
}
