package sharedstate_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sharedstate"
)

func fixtures(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestGolden checks every classification against bad.go (shared-mutable
// and shared-guarded variables, reported at their declarations) and the
// sanctioned patterns in ok.go (signal/channel mediation, single-proc
// capture, setup-only state), which must stay silent.
func TestGolden(t *testing.T) {
	analysistest.Run(t, fixtures(t), sharedstate.Analyzer, "repro/internal/fixshared")
}
