// Package sharedstate inventories the mutable state visible to more
// than one simulated proc — the machine-checked prerequisite for the
// ROADMAP item-2 parallel-DES refactor. Under the sequential kernel,
// cross-proc shared state is deterministic because only one proc runs
// at a time; under a sharded event heap it becomes a data race. This
// pass finds every such variable now, so new sharing cannot sneak in
// between the inventory and the parallel kernel.
//
// A variable is in scope when it is package-level and mutable (written
// somewhere in the module), or a function-local captured by a function
// literal. The pass walks the module call graph from every proc root —
// a function or literal handed to Runtime.Run, T3D.Run/RunOn/Spawn,
// Engine.Spawn/SpawnDaemon, Recovery.Run (Run-style spawns replicate
// the body across every PE, so one Run root already counts as two
// procs) — and collects which roots reach each variable's accessing
// functions. A variable reached from fewer than two procs is private
// and ignored.
//
// Shared variables are classified:
//
//   - shared-guarded: the sharing is disciplined — every proc-reachable
//     write lands in a PE-private slot (an index expression involving
//     MyPE()/the proc's pe) or is dominated by a PE-identity check (a
//     single designated writer), or all writes happen outside proc
//     context entirely (setup-time initialization, read-only during
//     the run). Safe to shard, but listed: the refactor must keep the
//     discipline true.
//   - shared-mutable: raw cross-proc mutation with no visible
//     discipline. Each one either gets restructured or carries a
//     //lint:allow sharedstate comment arguing why the sharing is
//     benign; the allow inventory is exactly the worklist the sharded
//     heap refactor has to revisit.
//
// Writes in a function that also fires a *sim.Signal or sends on a
// channel are treated as mediated and not reported: write-then-Fire is
// the sanctioned cross-proc publication idiom — readers order against
// the write through the event kernel, and that ordering survives
// sharding.
//
// Soundness caveats (DESIGN.md §16): struct fields are not tracked (a
// shared *Machine's field graph is the kernel's own plumbing — auditing
// it is the refactor itself, not a lint); reachability uses the
// conservative call graph, so function values laundered through
// containers may hide an access path; mediation is judged per function,
// not per path; locals of proc-called functions are treated as
// per-invocation frame state, so a closure over such a frame that
// escapes to another proc is not tracked.
package sharedstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the sharedstate pass.
var Analyzer = &analysis.Analyzer{
	Name:      "sharedstate",
	Doc:       "package-level and captured mutable state reachable from more than one proc body must be mediated, guarded, or explicitly allowed",
	RunModule: runModule,
}

const simPath = "repro/internal/sim"

// An access is one read or write of a tracked variable inside one
// function.
type access struct {
	node  *analysis.FuncNode
	write bool
	// guarded marks a write into a PE-private slot or under a
	// PE-identity check.
	guarded bool
}

type varInfo struct {
	v        *types.Var
	captured bool // closure-captured local (vs package-level)
	accesses []*access
	written  bool
}

type procRoot struct {
	n      *analysis.FuncNode
	weight int
}

func runModule(mp *analysis.ModulePass) error {
	m := mp.Module

	// Captured locals: vars used by a literal node they were not
	// declared in. Package-level vars are tracked unconditionally.
	capturedVars := map[*types.Var]bool{}
	for _, n := range m.Graph.Nodes {
		if n.Lit == nil {
			continue
		}
		forOwnIdents(n, func(id *ast.Ident, v *types.Var) {
			if !packageLevel(v) && !declaredWithin(v, n) {
				capturedVars[v] = true
			}
		})
	}

	vars := map[*types.Var]*varInfo{}
	for _, n := range m.Graph.Nodes {
		collectAccesses(n, capturedVars, vars)
	}

	// Proc roots and forward reachability over call+flow edges.
	var roots []procRoot
	for _, n := range m.Graph.Nodes {
		switch {
		case n.SpawnAll:
			roots = append(roots, procRoot{n, 2}) // replicated across every PE
		case n.SpawnOne:
			roots = append(roots, procRoot{n, 1})
		}
	}
	rootNodes := map[*analysis.FuncNode]bool{}
	for _, r := range roots {
		rootNodes[r.n] = true
	}
	reachedBy := map[*analysis.FuncNode][]int{}
	for ri, r := range roots {
		seen := map[*analysis.FuncNode]bool{}
		stack := []*analysis.FuncNode{r.n}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[n] {
				continue
			}
			seen[n] = true
			reachedBy[n] = append(reachedBy[n], ri)
			for _, e := range n.Out {
				// Invocation edges only. EdgeFlow says "this value escaped
				// and someone may call it" — following it merges every
				// event callback ever handed to Engine.At into every proc
				// that schedules anything, flattening per-transaction
				// closure state into global state. Laundered closures are
				// an accepted blind spot (doc caveat).
				if e.Kind != analysis.EdgeCall {
					continue
				}
				// Another root is its own proc boundary: the runtime's
				// internal dispatcher (spawned) invoking a program body
				// (spawn-shaped by argument position) is ONE proc, already
				// represented by the program's own root — traversing into
				// it would double-count every RunOn body as two procs.
				if rootNodes[e.Callee] && e.Callee != r.n {
					continue
				}
				stack = append(stack, e.Callee)
			}
		}
	}

	ordered := make([]*varInfo, 0, len(vars))
	for _, vi := range vars {
		ordered = append(ordered, vi)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].v.Pos() < ordered[j].v.Pos() })
	for _, vi := range ordered {
		judge(mp, vi, roots, reachedBy)
	}
	return nil
}

func judge(mp *analysis.ModulePass, vi *varInfo, roots []procRoot, reachedBy map[*analysis.FuncNode][]int) {
	if !vi.written {
		return // immutable (error sentinels, lookup tables never reassigned)
	}
	m := mp.Module
	if vi.v.Pkg() == nil {
		return
	}
	if len(m.Targets) > 0 && !m.Targets[vi.v.Pkg().Path()] {
		return
	}

	// Which proc roots reach an access, with Run-replication weighting.
	rootSet := map[int]bool{}
	procAccess := false
	var procWrites []*access
	for _, a := range vi.accesses {
		rs := reachedBy[a.node]
		if len(rs) == 0 {
			continue
		}
		procAccess = true
		for _, ri := range rs {
			rootSet[ri] = true
		}
		if a.write {
			procWrites = append(procWrites, a)
		}
	}
	if !procAccess {
		return
	}
	weight := 0
	for ri := range rootSet {
		weight += roots[ri].weight
	}
	if weight < 2 {
		return // private to one proc
	}

	// Mediated writes (write-then-Fire / channel publication) are the
	// sanctioned idiom; if every proc-reachable write is mediated the
	// variable is not a finding at all.
	unmediated := procWrites[:0:0]
	for _, a := range procWrites {
		if !nodeMediates(a.node) {
			unmediated = append(unmediated, a)
		}
	}

	// A captured local whose declaring function is itself reached from
	// proc context is frame state, not shared state: every proc-side
	// invocation creates a fresh instance of the variable (checksum
	// accumulators, per-transaction transfer descriptors), so no two
	// procs ever see the same binding. Only a host-side frame — created
	// once, captured by proc roots — can be genuinely shared. The blind
	// spot (doc caveat): a closure over such a frame that escapes to a
	// proc spawned elsewhere shares the instance and is not tracked.
	if vi.captured {
		if fn := frameNode(m, vi.v); fn != nil && len(reachedBy[fn]) > 0 {
			return
		}
	}

	kind := "package-level var"
	if vi.captured {
		kind = "captured var"
	}
	switch {
	case len(procWrites) == 0:
		mp.ReportClassf(vi.v.Pos(), "shared-guarded",
			"%s %s is read from %d procs and mutated only outside proc context (setup-time) — shared-guarded; the parallel-DES refactor must keep it frozen during the run, or argue the case in a //lint:allow", kind, vi.v.Name(), weight)
	case len(unmediated) == 0:
		return // all cross-proc writes are signal/channel-mediated
	case allGuarded(unmediated):
		mp.ReportClassf(vi.v.Pos(), "shared-guarded",
			"%s %s is written from %d procs through PE-private slots or a PE-identity guard — shared-guarded; the parallel-DES refactor must preserve the slotting, or argue the case in a //lint:allow", kind, vi.v.Name(), weight)
	default:
		mp.ReportClassf(vi.v.Pos(), "shared-mutable",
			"%s %s is mutated from %d procs with no mediating signal/channel and no PE slotting — shared-mutable; this is a data race under the parallel-DES kernel (ROADMAP item 2): restructure, mediate, or argue the case in a //lint:allow", kind, vi.v.Name(), weight)
	}
}

func allGuarded(writes []*access) bool {
	for _, a := range writes {
		if !a.guarded {
			return false
		}
	}
	return true
}

// frameNode returns the innermost function node whose source range
// contains v's declaration — the function whose stack frame holds the
// variable.
func frameNode(m *analysis.Module, v *types.Var) *analysis.FuncNode {
	var best *analysis.FuncNode
	var bestSpan token.Pos
	for _, n := range m.Graph.Nodes {
		if n.Pkg.Types != v.Pkg() {
			continue
		}
		var lo, hi token.Pos
		if n.Lit != nil {
			lo, hi = n.Lit.Pos(), n.Lit.End()
		} else {
			lo, hi = n.Decl.Pos(), n.Decl.End()
		}
		if lo <= v.Pos() && v.Pos() < hi {
			if best == nil || hi-lo < bestSpan {
				best, bestSpan = n, hi-lo
			}
		}
	}
	return best
}

// packageLevel reports whether v is declared at package scope.
func packageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// declaredWithin reports whether v's declaration lies inside node n's
// own source range.
func declaredWithin(v *types.Var, n *analysis.FuncNode) bool {
	var lo, hi token.Pos
	if n.Lit != nil {
		lo, hi = n.Lit.Pos(), n.Lit.End()
	} else {
		lo, hi = n.Decl.Pos(), n.Decl.End()
	}
	return lo <= v.Pos() && v.Pos() < hi
}

// forOwnIdents visits every identifier in n's own body — excluding
// nested literals, which are their own nodes — that resolves to a
// non-field *types.Var.
func forOwnIdents(n *analysis.FuncNode, fn func(*ast.Ident, *types.Var)) {
	info := n.Pkg.Info
	ast.Inspect(n.Body(), func(nn ast.Node) bool {
		if lit, ok := nn.(*ast.FuncLit); ok && (n.Lit == nil || lit != n.Lit) {
			return false
		}
		if id, ok := nn.(*ast.Ident); ok {
			if v, ok := info.ObjectOf(id).(*types.Var); ok && v != nil && !v.IsField() {
				fn(id, v)
			}
		}
		return true
	})
}

// collectAccesses records n's reads and writes of tracked variables:
// package-level vars on any use, locals only when closure-captured.
func collectAccesses(n *analysis.FuncNode, capturedVars map[*types.Var]bool, vars map[*types.Var]*varInfo) {
	info := n.Pkg.Info

	// Write positions: base identifiers of assignment LHS, IncDec
	// operands, and address-taken operands (conservative: &x escapes).
	writes := map[*ast.Ident]bool{}
	guarded := map[*ast.Ident]bool{}
	var markWrite func(e ast.Expr, g bool)
	markWrite = func(e ast.Expr, g bool) {
		if idx, ok := ast.Unparen(e).(*ast.IndexExpr); ok && peExpr(info, idx.Index) {
			g = true // write into a PE-private slot
		}
		if id := baseIdent(e); id != nil {
			writes[id] = true
			if g {
				guarded[id] = true
			}
		}
	}
	// peDepth > 0 while inside an if whose condition tests PE identity.
	var walk func(nn ast.Node, peGuard bool)
	walk = func(nn ast.Node, peGuard bool) {
		ast.Inspect(nn, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				if n.Lit == nil || x != n.Lit {
					return false
				}
			case *ast.IfStmt:
				if peExpr(info, x.Cond) {
					walk(x.Body, true)
					if x.Else != nil {
						walk(x.Else, peGuard)
					}
					if x.Init != nil {
						walk(x.Init, peGuard)
					}
					return false
				}
			case *ast.SwitchStmt:
				// switch c.MyPE() { case 0: ... } designates one writer
				// per arm — the switch form of the PE-identity guard. A
				// tagless switch guards only the arms whose case
				// expression tests PE identity.
				if x.Tag != nil && peExpr(info, x.Tag) {
					walk(x.Body, true)
					if x.Init != nil {
						walk(x.Init, peGuard)
					}
					return false
				}
				if x.Tag == nil {
					for _, cl := range x.Body.List {
						cc := cl.(*ast.CaseClause)
						g := peGuard
						for _, e := range cc.List {
							if peExpr(info, e) {
								g = true
							}
						}
						for _, st := range cc.Body {
							walk(st, g)
						}
					}
					if x.Init != nil {
						walk(x.Init, peGuard)
					}
					return false
				}
			case *ast.AssignStmt:
				if x.Tok != token.DEFINE {
					for _, lhs := range x.Lhs {
						markWrite(lhs, peGuard)
					}
				}
			case *ast.IncDecStmt:
				markWrite(x.X, peGuard)
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					markWrite(x.X, peGuard)
				}
			}
			return true
		})
	}
	walk(n.Body(), false)

	forOwnIdents(n, func(id *ast.Ident, v *types.Var) {
		if !packageLevel(v) && !capturedVars[v] {
			return
		}
		vi := vars[v]
		if vi == nil {
			vi = &varInfo{v: v, captured: !packageLevel(v)}
			vars[v] = vi
		}
		a := &access{node: n, write: writes[id], guarded: guarded[id]}
		vi.accesses = append(vi.accesses, a)
		if a.write {
			vi.written = true
		}
	})
}

// baseIdent unwraps parens, indexing, and dereference to the leftmost
// identifier of an assignable expression. It deliberately stops at a
// selector: s.field = x mutates the struct behind s, not the variable
// binding — struct-field tracking is out of scope (the doc's soundness
// caveat), and counting it as a write to s drowned the inventory in
// every captured receiver pointer.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

// peExpr reports whether e mentions the proc's PE identity: a call to a
// method named MyPE, a selector .PE, or an identifier named pe/me.
func peExpr(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(nn.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "MyPE" {
				found = true
			}
		case *ast.SelectorExpr:
			if nn.Sel.Name == "PE" || nn.Sel.Name == "Pe" {
				found = true
			}
		case *ast.Ident:
			if nn.Name == "pe" || nn.Name == "me" {
				found = true
			}
		}
		return !found
	})
	return found
}

// nodeMediates reports whether n's body fires a sim signal or sends on
// a channel — the write-then-publish idiom that orders readers through
// the event kernel.
func nodeMediates(n *analysis.FuncNode) bool {
	info := n.Pkg.Info
	found := false
	ast.Inspect(n.Body(), func(nn ast.Node) bool {
		if found {
			return false
		}
		switch nn := nn.(type) {
		case *ast.FuncLit:
			if n.Lit == nil || nn != n.Lit {
				return false
			}
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if fn := analysis.CalleeIn(info, nn); fn != nil {
				if pkg, tn := analysis.ReceiverNamed(fn); pkg == simPath && tn == "Signal" && fn.Name() == "Fire" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
