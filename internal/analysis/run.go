package analysis

import (
	"fmt"
	"sort"
)

// RunPackage executes the per-package analyzers over one loaded package
// and returns the raw (unsuppressed) diagnostics in source order.
// Module-level analyzers (RunModule) are skipped; use RunPackages.
func RunPackage(l *Loader, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      l.Fset,
			Files:     pkg.Files,
			Path:      pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s over %s: %w", a.Name, pkg.Path, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// RunModuleAnalyzers builds the module view over everything the loader
// has resolved and executes the module-level analyzers, restricting
// findings to the target paths. It returns the raw diagnostics and the
// module (for callers that want the graph, e.g. timing output).
func RunModuleAnalyzers(l *Loader, targets []string, analyzers []*Analyzer) ([]Diagnostic, *Module, error) {
	var modAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			modAnalyzers = append(modAnalyzers, a)
		}
	}
	if len(modAnalyzers) == 0 {
		return nil, nil, nil
	}
	m := NewModule(l, targets)
	var diags []Diagnostic
	for _, a := range modAnalyzers {
		pass := &ModulePass{
			Analyzer: a,
			Module:   m,
			Fset:     l.Fset,
			diags:    &diags,
		}
		if err := a.RunModule(pass); err != nil {
			return nil, nil, fmt.Errorf("analysis: %s over module: %w", a.Name, err)
		}
	}
	return diags, m, nil
}

// RunPackages loads every path, runs per-package and module-level
// analyzers, and applies the //lint:allow suppression policy. The
// returned diagnostics are the actionable findings: real violations,
// malformed suppressions, and stale suppressions. For the full audit
// set including suppressed findings, use RunPackagesDetail.
func RunPackages(l *Loader, paths []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, _, err := RunPackagesDetail(l, paths, analyzers)
	if err != nil {
		return nil, err
	}
	return Active(all), nil
}

// RunPackagesDetail is RunPackages without the suppression filter: it
// returns every diagnostic, with waived findings marked Suppressed and
// carrying their allow's reason, plus the module view (nil when no
// module-level analyzer ran). Suppression is applied globally — a
// module-level pass may report into any target package and the allow
// comment there still matches.
func RunPackagesDetail(l *Loader, paths []string, analyzers []*Analyzer) ([]Diagnostic, *Module, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Diagnostic
	var allows []*Allow
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, nil, err
		}
		diags, err := RunPackage(l, pkg, analyzers)
		if err != nil {
			return nil, nil, err
		}
		pkgAllows, bad := CollectAllows(l.Fset, pkg, known)
		all = append(all, diags...)
		all = append(all, bad...)
		allows = append(allows, pkgAllows...)
	}
	modDiags, m, err := RunModuleAnalyzers(l, paths, analyzers)
	if err != nil {
		return nil, nil, err
	}
	all = append(all, modDiags...)
	all = MarkSuppressions(all, allows)
	SortDiagnostics(all)
	return all, m, nil
}

// Active filters a marked diagnostic set down to the findings that
// still demand action: everything not waived by a //lint:allow.
func Active(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// SortDiagnostics orders diagnostics by file, line, column, pass.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Pass < b.Pass
	})
}
