package analysis

import (
	"fmt"
	"sort"
)

// RunPackage executes the analyzers over one loaded package and returns
// the raw (unsuppressed) diagnostics in source order.
func RunPackage(l *Loader, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      l.Fset,
			Files:     pkg.Files,
			Path:      pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s over %s: %w", a.Name, pkg.Path, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// RunPackages loads every path, runs the analyzers, and applies the
// //lint:allow suppression policy per package. The returned diagnostics
// are the actionable findings: real violations, malformed suppressions,
// and stale suppressions.
func RunPackages(l *Loader, paths []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var all []Diagnostic
	for _, path := range paths {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		diags, err := RunPackage(l, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		allows, bad := CollectAllows(l.Fset, pkg, known)
		all = append(all, ApplySuppressions(diags, allows)...)
		all = append(all, bad...)
	}
	SortDiagnostics(all)
	return all, nil
}

// SortDiagnostics orders diagnostics by file, line, column, pass.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Pass < b.Pass
	})
}
