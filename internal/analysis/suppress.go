package analysis

import (
	"go/token"
	"strings"
)

// Suppression policy: a finding may be waived, line by line, with
//
//	//lint:allow <pass> <reason>
//
// placed either on the flagged line or as a standalone comment on the
// line directly above it. The reason is mandatory — a suppression is a
// reviewed, written-down argument for why the invariant holds anyway
// (e.g. "use-sequence values are unique, so the min is order-independent"),
// never a mute button. Malformed suppressions (missing pass, missing
// reason, unknown pass name) and suppressions that no longer match any
// finding are themselves reported, so stale waivers cannot accumulate:
// deleting the code a suppression covered makes the lint fail until the
// comment goes too.

const allowPrefix = "//lint:allow"

// An Allow is one parsed //lint:allow comment.
type Allow struct {
	Pos    token.Position
	Pass   string
	Reason string
	used   bool
}

// CollectAllows scans a package's comments for //lint:allow markers.
// knownPasses maps valid pass names; malformed markers are returned as
// diagnostics from the synthetic "suppress" pass.
func CollectAllows(fset *token.FileSet, pkg *Package, knownPasses map[string]bool) ([]*Allow, []Diagnostic) {
	var allows []*Allow
	var bad []Diagnostic
	report := func(pos token.Position, class, msg string) {
		bad = append(bad, Diagnostic{
			Pass: "suppress", Class: class, Pos: pos,
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(pos, "malformed", "malformed //lint:allow: missing pass name and reason")
					continue
				}
				pass := fields[0]
				if !knownPasses[pass] {
					report(pos, "unknown-pass", "//lint:allow names unknown pass "+pass)
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), pass))
				if reason == "" {
					report(pos, "missing-reason", "//lint:allow "+pass+" has no reason — suppressions must say why the invariant holds")
					continue
				}
				allows = append(allows, &Allow{Pos: pos, Pass: pass, Reason: reason})
			}
		}
	}
	return allows, bad
}

// ApplySuppressions filters diags against allows: a diagnostic is
// suppressed when an allow for its pass sits on the same line or on the
// line directly above. It returns the surviving diagnostics plus one
// "suppress" diagnostic per allow that matched nothing.
func ApplySuppressions(diags []Diagnostic, allows []*Allow) []Diagnostic {
	return Active(MarkSuppressions(diags, allows))
}

// MarkSuppressions matches diags against allows without dropping
// anything: waived findings come back with Suppressed set and the
// allow's reason attached, so the full set remains available as an
// audit inventory (-json emits it; exit codes count active findings
// only). One "suppress" diagnostic is appended per allow that matched
// nothing.
func MarkSuppressions(diags []Diagnostic, allows []*Allow) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		for _, a := range allows {
			if a.Pass == d.Pass && a.Pos.Filename == d.File &&
				(a.Pos.Line == d.Line || a.Pos.Line == d.Line-1) {
				a.used = true
				d.Suppressed = true
				d.SuppressReason = a.Reason
			}
		}
		out = append(out, d)
	}
	for _, a := range allows {
		if !a.used {
			out = append(out, Diagnostic{
				Pass: "suppress", Class: "unused-allow", Pos: a.Pos,
				File: a.Pos.Filename, Line: a.Pos.Line, Col: a.Pos.Column,
				Message: "unused //lint:allow " + a.Pass + " — no finding here; delete the stale suppression",
			})
		}
	}
	return out
}
