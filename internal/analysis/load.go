package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages for analysis. Module-local
// import paths are resolved straight from their source directories;
// everything else (the standard library) goes through the toolchain's
// source importer. This keeps the linter independent of export data
// and of any third-party loading machinery.
type Loader struct {
	Fset *token.FileSet

	// dirFor maps an import path to its source directory, or "" when
	// the path is not served by this loader (and falls through to the
	// standard-library importer).
	dirFor func(path string) string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at moduleDir with
// the given module path (from go.mod).
func NewLoader(moduleDir, modulePath string) *Loader {
	l := newLoader()
	l.dirFor = func(path string) string {
		if path == modulePath {
			return moduleDir
		}
		if rest, ok := strings.CutPrefix(path, modulePath+"/"); ok {
			return filepath.Join(moduleDir, filepath.FromSlash(rest))
		}
		return ""
	}
	return l
}

// NewOverlayLoader returns a loader that resolves every non-stdlib
// import path under root — the GOPATH-style testdata/src layout the
// analyzer golden tests use. Fixture packages import stub versions of
// the real module packages (same import paths, skeletal bodies), so the
// tests are hermetic: they never touch, and never depend on, the state
// of the real tree.
func NewOverlayLoader(root string) *Loader {
	l := newLoader()
	l.dirFor = func(path string) string {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
		return ""
	}
	return l
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Load parses and type-checks the package at the given import path
// (which must be served by this loader, not the standard library).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: %s is not inside the module", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{Importer: l}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer so packages under analysis can
// depend on each other and on the standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.dirFor(path) != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// parseDir parses the non-test Go files of dir in name order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ExpandPatterns resolves command-line package patterns ("./...",
// "./internal/...", "./internal/em3d") against the module rooted at
// moduleDir into a sorted list of import paths. Directories named
// testdata and hidden directories are never matched by "..." patterns.
func ExpandPatterns(moduleDir, modulePath string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := filepath.Join(moduleDir, filepath.FromSlash(pat))
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("analysis: no Go files in %s", base)
			}
			add(importPathFor(moduleDir, modulePath, base))
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(importPathFor(moduleDir, modulePath, p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	//lint:allow errtaxonomy an unreadable directory simply has no lintable files; Load reports real errors when the package is parsed
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

func importPathFor(moduleDir, modulePath, dir string) string {
	rel, err := filepath.Rel(moduleDir, dir)
	if err != nil || rel == "." {
		return modulePath
	}
	return modulePath + "/" + filepath.ToSlash(rel)
}
