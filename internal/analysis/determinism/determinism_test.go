package determinism_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/determinism"
)

func fixtures(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestGolden checks every violation kind against bad.go and the
// blessed real-tree patterns in ok.go (which must stay silent).
func TestGolden(t *testing.T) {
	analysistest.Run(t, fixtures(t), determinism.Analyzer, "repro/internal/fixdet")
}

// TestSchedulerExempt proves repro/internal/sim may use raw go
// statements: the event kernel owns goroutine creation. The stub
// package contains one and must stay silent.
func TestSchedulerExempt(t *testing.T) {
	analysistest.Run(t, fixtures(t), determinism.Analyzer, "repro/internal/sim")
}

// TestHostLayerExempt proves repro/internal/serve — the t3dserve host
// layer — is exempt wholesale: its stub reads the wall clock and spawns
// a goroutine and must stay silent.
func TestHostLayerExempt(t *testing.T) {
	analysistest.Run(t, fixtures(t), determinism.Analyzer, "repro/internal/serve")
}
