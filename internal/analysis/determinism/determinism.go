// Package determinism enforces bit-identical replay in simulator code:
// every experiment, chaos soak, and recovery replay in this tree
// assumes that the same seed produces the same execution, cycle for
// cycle, digest for digest. Four things silently break that contract
// in Go, and this pass forbids all of them in repro/internal/...
// non-test code:
//
//   - wall-clock reads (time.Now, time.Since, time.Until): simulated
//     time is sim.Time; the host clock must never leak into results;
//   - the global math/rand source (rand.Intn, rand.Float64, ...):
//     process-seeded and shared; every draw must come from an
//     explicitly seeded rand.New(rand.NewSource(seed)) instance;
//   - raw go statements outside repro/internal/sim: the event kernel
//     owns goroutine creation and hands the single execution token
//     between procs; a stray goroutine races the simulation;
//   - iteration over a map with order-sensitive effects: Go randomizes
//     map order per process, so a map-range loop may only accumulate
//     commutatively. Recognized as order-safe, and therefore allowed:
//     commutative compound assignments (+=, |=, x++, ...), writes
//     indexed by the range key (m2[k] = v), assignments to variables
//     declared inside the loop, and the collect-then-sort idiom where
//     the statement immediately after the loop sorts what was
//     appended. Anything else — a plain assignment to outer state, an
//     output call — is flagged; genuinely order-insensitive loops
//     (choosing a unique minimum, marking every match) carry a
//     //lint:allow determinism comment arguing the case.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the determinism pass.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global math/rand, raw goroutines, and order-sensitive map iteration in internal/ simulator code",
	Run:  run,
}

const simPath = "repro/internal/sim"

// hostPkgs are internal packages that live on the HOST side of the
// host/simulation boundary and are exempt from the pass wholesale.
// internal/serve is the t3dserve service layer: worker pools, wall-clock
// deadlines, and HTTP handlers are its job, and none of its host-time
// reads or goroutines can reach simulated state — every simulation it
// runs goes through runSpec, which builds a fresh seeded machine and
// only touches the engine via the sanctioned SetCancelPoll seam.
var hostPkgs = map[string]bool{
	"repro/internal/serve": true,
	// internal/hostfs is the host-storage VFS under the journal: real
	// files, injected faults, and crash-point recording. Its seeded
	// fault stream uses the sanctioned internal/fault core, and nothing
	// in it can reach simulated state.
	"repro/internal/hostfs": true,
	// internal/ckpt is the durable-checkpoint store on that same VFS:
	// host files, host timestamps for /statusz freshness, nothing that
	// can reach simulated state — the snapshots it stores are inert
	// bytes between a barrier and a resume.
	"repro/internal/ckpt": true,
}

// randConstructors are the package-level math/rand functions that do
// not touch the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.Path, "repro/internal/") || hostPkgs[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if pass.Path != simPath {
					pass.ReportClassf(n.Pos(), "raw-go",
						"raw go statement outside the internal/sim scheduler — the event kernel owns goroutine creation; a stray goroutine races the simulation")
				}
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
		// The map-range rule needs each statement's successor (for the
		// collect-then-sort idiom), so it walks statement lists.
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				walkStmtLists(fd.Body, func(list []ast.Stmt) {
					for i, s := range list {
						if rng, ok := s.(*ast.RangeStmt); ok {
							var next ast.Stmt
							if i+1 < len(list) {
								next = list[i+1]
							}
							checkMapRange(pass, rng, next)
						}
					}
				})
			}
		}
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return
	}
	if analysis.IsPkgFunc(fn, "time", "Now", "Since", "Until") {
		pass.ReportClassf(call.Pos(), "wall-clock",
			"wall-clock %s.%s in simulator code — host time is nondeterministic across runs; use sim.Time from the event kernel", fn.Pkg().Name(), fn.Name())
		return
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if (pkg == "math/rand" || pkg == "math/rand/v2") && fn.Type().(*types.Signature).Recv() == nil &&
		!randConstructors[fn.Name()] {
		pass.ReportClassf(call.Pos(), "global-rand",
			"global math/rand %s draws from the process-seeded shared source — replay is not bit-identical; use rand.New(rand.NewSource(seed))", fn.Name())
	}
}

// walkStmtLists invokes fn on every statement list under root,
// including nested blocks and switch/select clause bodies.
func walkStmtLists(root ast.Node, fn func([]ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, next ast.Stmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	keyObj := rangeVarObj(pass, rng.Key)

	// Collect-then-sort: assignments to a target that the immediately
	// following sort statement mentions are order-safe.
	sortedTargets := sortCallTargets(pass, next)

	var offender string
	flag := func(what string) {
		if offender == "" {
			offender = what
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if offender != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure's effects happen when it runs, which this
			// loop-local analysis cannot see; judged at its call site.
			return false
		case *ast.CallExpr:
			if fn := pass.CalleeFunc(n); fn != nil {
				if analysis.IsPkgFunc(fn, "fmt") && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
					flag("emits output (" + fn.Name() + ")")
				} else if analysis.IsPkgFunc(fn, "log") {
					flag("emits output (log." + fn.Name() + ")")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			if n.Tok != token.ASSIGN && n.Tok != token.REM_ASSIGN {
				return true // commutative accumulator (+=, |=, ...)
			}
			for _, lhs := range n.Lhs {
				if describeOrderSensitiveLHS(pass, lhs, rng, keyObj, sortedTargets) {
					flag("assigns " + types.ExprString(lhs) + " outside the loop")
				}
			}
		}
		return true
	})
	if offender != "" {
		pass.ReportClassf(rng.Pos(), "map-order",
			"iteration over map %s %s — Go randomizes map order per process, breaking bit-identical replay; iterate a sorted key list, restructure, or argue order-independence in a //lint:allow", types.ExprString(rng.X), offender)
	}
}

// describeOrderSensitiveLHS reports whether a plain assignment to lhs
// inside rng's body is order-sensitive.
func describeOrderSensitiveLHS(pass *analysis.Pass, lhs ast.Expr, rng *ast.RangeStmt, keyObj types.Object, sortedTargets string) bool {
	lhs = ast.Unparen(lhs)
	// Blank assignment never carries state.
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return false
	}
	// Per-key writes (m2[k] = v) are order-independent.
	if idx, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
		if id, ok := ast.Unparen(idx.Index).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == keyObj {
			return false
		}
	}
	// Assignments to variables declared inside the loop are local.
	if id, ok := lhs.(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil &&
			obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			return false
		}
	}
	// Collect-then-sort: the sort right after the loop re-establishes a
	// canonical order for everything appended here.
	if sortedTargets != "" && strings.Contains(sortedTargets, types.ExprString(lhs)) {
		return false
	}
	return true
}

// sortCallTargets renders the argument list of a sort.*/slices.* call
// statement, or "" when next is not one.
func sortCallTargets(pass *analysis.Pass, next ast.Stmt) string {
	es, ok := next.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
		return ""
	}
	parts := make([]string, 0, len(call.Args))
	for _, a := range call.Args {
		parts = append(parts, types.ExprString(a))
	}
	return strings.Join(parts, ", ")
}

func rangeVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}
