// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: named analyzers run over
// type-checked packages and report position-tagged diagnostics.
//
// The simulator's correctness contracts — the Split-C sync-counter
// discipline, bit-identical replay, the deadline/partition/poison error
// taxonomy, simulated-time-only accounting — are invariants a compiler
// would enforce, and this package enforces them the same way: as static
// passes over the AST with full type information. It deliberately
// depends only on the standard library (go/ast, go/parser, go/types),
// so the linter builds with the bare toolchain, no module downloads.
//
// The four shipped passes live in subpackages (splitphase, determinism,
// errtaxonomy, cycleaccount) and are driven by cmd/t3dlint; see
// DESIGN.md §11 for the pass catalog and the suppression policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in output and in //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Run executes the pass over one package, reporting findings
	// through pass.Reportf. Nil for module-level analyzers.
	Run func(pass *Pass) error
	// RunModule, when set, executes the pass once over the whole
	// module: the call graph and fact store let it compute summaries
	// bottom-up over SCCs and report findings across package
	// boundaries. An analyzer sets exactly one of Run / RunModule.
	RunModule func(pass *ModulePass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files. Test files are
	// never loaded: the invariants govern the simulator, and tests
	// legitimately do what the passes forbid (wall-clock timeouts,
	// reading a Get destination early to prove staleness).
	Files []*ast.File
	// Path is the package's import path (e.g. "repro/internal/em3d").
	// Passes use it for scope decisions such as exempting the
	// internal/sim scheduler from the raw-goroutine rule.
	Path      string
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, resolved to a file position. The JSON
// shape is a contract with CI tooling — see cmd/t3dlint's decode test.
type Diagnostic struct {
	Pass string         `json:"pass"`
	Pos  token.Position `json:"-"`
	File string         `json:"file"`
	Line int            `json:"line"`
	Col  int            `json:"col"`
	// Class is a stable machine-readable violation label within the
	// pass (e.g. "shared-mutable", "iface-box"); empty for passes that
	// predate classification.
	Class   string `json:"class,omitempty"`
	Message string `json:"message"`
	// Suppressed marks findings waived by a //lint:allow comment;
	// SuppressReason carries the allow's written-down argument. The
	// -json output includes suppressed findings (they are the audit
	// inventory); exit codes count only active ones.
	Suppressed     bool   `json:"suppressed"`
	SuppressReason string `json:"suppress_reason,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Pass, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportClassf(pos, "", format, args...)
}

// ReportClassf records a finding at pos tagged with a violation class.
func (p *Pass) ReportClassf(pos token.Pos, class, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pass:    p.Analyzer.Name,
		Class:   class,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function-typed variables, builtins, and conversions.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is a package-level function or a method
// declared in the package with import path pkg and has one of the given
// names. An empty names list matches any name.
func IsPkgFunc(fn *types.Func, pkg string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkg {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// ReceiverNamed returns the defining package path and type name of fn's
// receiver base type ("", "" for package-level functions).
func ReceiverNamed(fn *types.Func) (pkgPath, typeName string) {
	if fn == nil {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// IsErrorType reports whether t is the built-in error interface type.
func IsErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
