// Package core implements the paper's primary contribution: the
// "gray-box" micro-benchmarking methodology of §2.1. Simple probes
// generate controlled address streams (the sawtooth stimulus), observe
// the average latency response, and infer the structure and parameters of
// the memory system and shell from the inflection points.
//
// The probes are written directly against the simulated hardware
// operations — the analogue of the paper's assembly-language probes — so
// measurements reflect hardware costs, not runtime overhead. Loop and
// address-calculation overhead simply is not charged, which corresponds
// to the paper subtracting it out.
//
// Each probe returns a Profile (a family of latency curves) or a Series;
// package exp turns these into the paper's figures and tables.
package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Point is one measurement in a latency profile.
type Point struct {
	ArraySize int64   // bytes
	Stride    int64   // bytes
	AvgNS     float64 // average per memory operation
}

// Curve is the latency-vs-stride curve for one array size.
type Curve struct {
	ArraySize int64
	Points    []Point
}

// Profile is a family of curves — one figure in the paper.
type Profile struct {
	Label  string
	Curves []Curve
}

// AvgCycles converts a point's latency to cycles.
func (p Point) AvgCycles() float64 { return p.AvgNS / cpu.NSPerCycle }

// At returns the measured latency for an exact (size, stride), or false.
func (pr *Profile) At(size, stride int64) (float64, bool) {
	for _, c := range pr.Curves {
		if c.ArraySize != size {
			continue
		}
		for _, pt := range c.Points {
			if pt.Stride == stride {
				return pt.AvgNS, true
			}
		}
	}
	return 0, false
}

// Sizes returns the array sizes present in the profile.
func (pr *Profile) Sizes() []int64 {
	var out []int64
	for _, c := range pr.Curves {
		out = append(out, c.ArraySize)
	}
	return out
}

// DefaultSizes are the array sizes of Figure 1: 4 KB to 8 MB, doubling.
func DefaultSizes() []int64 {
	var out []int64
	for s := int64(4 << 10); s <= 8<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}

// StridesFor returns the stride sweep for one array size: 8 bytes to
// size/2, doubling (§2.2 uses element strides from 1, on 8-byte words).
func StridesFor(size int64) []int64 {
	var out []int64
	for st := int64(8); st <= size/2; st *= 2 {
		out = append(out, st)
	}
	return out
}

// Probe is one memory operation under test on a T3D node.
type Probe struct {
	Name string
	// Setup runs once before measurement (annex configuration, warming).
	Setup func(p *sim.Proc, n *machine.Node)
	// Access performs the operation on the element at offset off within
	// the probe's array.
	Access func(p *sim.Proc, n *machine.Node, off int64)
	// Settle runs between passes, outside the timed region (drain write
	// buffers so the next pass starts clean). May be nil.
	Settle func(p *sim.Proc, n *machine.Node)
}

// SawtoothConfig controls a sweep.
type SawtoothConfig struct {
	Sizes []int64
	// MinAccesses per measured pass; small size/stride combinations loop
	// the array several times to reach it.
	MinAccesses int64
	// WarmPasses run untimed before measurement (the repeat-and-average
	// methodology; the first pass warms caches exactly as in the paper).
	WarmPasses int
	// Base is the array's base offset in (remote) memory.
	Base int64
}

// DefaultSawtoothConfig returns the Figure 1 sweep parameters.
func DefaultSawtoothConfig() SawtoothConfig {
	return SawtoothConfig{Sizes: DefaultSizes(), MinAccesses: 512, WarmPasses: 1, Base: 0}
}

// Sawtooth runs the stimulus of §2.2 against a fresh machine per (size,
// stride) point: step through an array of a given size with a given
// stride, and report the average time per operation.
func Sawtooth(newMachine func() *machine.T3D, probe Probe, cfg SawtoothConfig) Profile {
	prof := Profile{Label: probe.Name}
	for _, size := range cfg.Sizes {
		curve := Curve{ArraySize: size}
		for _, stride := range StridesFor(size) {
			avg := sawtoothPoint(newMachine, probe, cfg, size, stride)
			curve.Points = append(curve.Points, Point{size, stride, avg})
		}
		prof.Curves = append(prof.Curves, curve)
	}
	return prof
}

func sawtoothPoint(newMachine func() *machine.T3D, probe Probe, cfg SawtoothConfig, size, stride int64) float64 {
	m := newMachine()
	var avg float64
	m.RunOn(0, func(p *sim.Proc, n *machine.Node) {
		if probe.Setup != nil {
			probe.Setup(p, n)
		}
		perPass := size / stride
		if perPass == 0 {
			panic(fmt.Sprintf("core: stride %d exceeds array size %d", stride, size))
		}
		passes := int(cfg.MinAccesses/perPass) + 1
		onePass := func() {
			for off := int64(0); off < size; off += stride {
				probe.Access(p, n, cfg.Base+off)
			}
		}
		for w := 0; w < cfg.WarmPasses; w++ {
			onePass()
		}
		if probe.Settle != nil {
			probe.Settle(p, n)
		}
		start := p.Now()
		for r := 0; r < passes; r++ {
			onePass()
		}
		elapsed := p.Now() - start
		avg = float64(elapsed) / float64(int64(passes)*perPass) * cpu.NSPerCycle
	})
	return avg
}

// SawtoothWorkstation runs the same stimulus on the DEC Alpha
// workstation model (Figure 1, right side).
func SawtoothWorkstation(probe WSProbe, cfg SawtoothConfig) Profile {
	prof := Profile{Label: probe.Name}
	for _, size := range cfg.Sizes {
		curve := Curve{ArraySize: size}
		for _, stride := range StridesFor(size) {
			w := machine.NewWorkstation()
			//lint:allow sharedstate Workstation.Run drives a single CPU, so the writer is unique; the 2-proc weight is the pass's replicated-Run approximation
			var avg float64
			w.Run(func(p *sim.Proc, c *cpu.CPU) {
				perPass := size / stride
				passes := int(cfg.MinAccesses/perPass) + 1
				onePass := func() {
					for off := int64(0); off < size; off += stride {
						probe.Access(p, c, cfg.Base+off)
					}
				}
				for i := 0; i < cfg.WarmPasses; i++ {
					onePass()
				}
				start := p.Now()
				for r := 0; r < passes; r++ {
					onePass()
				}
				avg = float64(p.Now()-start) / float64(int64(passes)*(size/stride)) * cpu.NSPerCycle
			})
			curve.Points = append(curve.Points, Point{size, stride, avg})
		}
		prof.Curves = append(prof.Curves, curve)
	}
	return prof
}

// WSProbe is a probe against the workstation model.
type WSProbe struct {
	Name   string
	Access func(p *sim.Proc, c *cpu.CPU, off int64)
}
