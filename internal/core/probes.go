package core

import (
	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Standard probes, named after the paper's experiments. Remote probes
// address node 1 through annex register 1, matching the paper's
// adjacent-node setup (§4.2).

// LocalRead is the §2.2 read probe.
func LocalRead() Probe {
	return Probe{
		Name: "local read",
		Access: func(p *sim.Proc, n *machine.Node, off int64) {
			n.CPU.Load64(p, off)
		},
	}
}

// LocalWrite is the §2.3 write probe.
func LocalWrite() Probe {
	return Probe{
		Name: "local write",
		Access: func(p *sim.Proc, n *machine.Node, off int64) {
			n.CPU.Store64(p, off, 1)
		},
		Settle: func(p *sim.Proc, n *machine.Node) { n.CPU.MB(p) },
	}
}

func annexSetup(cached bool) func(p *sim.Proc, n *machine.Node) {
	return func(p *sim.Proc, n *machine.Node) {
		n.Shell.SetAnnex(p, 1, 1, cached)
	}
}

// RemoteReadUncached is the §4.2 uncached read probe.
func RemoteReadUncached() Probe {
	return Probe{
		Name:  "remote read (uncached)",
		Setup: annexSetup(false),
		Access: func(p *sim.Proc, n *machine.Node, off int64) {
			n.CPU.Load64(p, addr.Make(1, off))
		},
	}
}

// RemoteReadCached is the §4.2 cached read probe.
func RemoteReadCached() Probe {
	return Probe{
		Name:  "remote read (cached)",
		Setup: annexSetup(true),
		Access: func(p *sim.Proc, n *machine.Node, off int64) {
			n.CPU.Load64(p, addr.Make(1, off))
		},
	}
}

// RemoteWriteBlocking is the §4.3 blocking write probe: store, memory
// barrier, poll for the acknowledgement.
func RemoteWriteBlocking() Probe {
	return Probe{
		Name:  "remote write (blocking)",
		Setup: annexSetup(false),
		Access: func(p *sim.Proc, n *machine.Node, off int64) {
			n.CPU.Store64(p, addr.Make(1, off), 1)
			n.CPU.MB(p)
			n.Shell.WaitWritesComplete(p)
		},
	}
}

// RemoteWriteNonblocking is the §5.3 pipelined store probe.
func RemoteWriteNonblocking() Probe {
	return Probe{
		Name:  "remote write (non-blocking)",
		Setup: annexSetup(false),
		Access: func(p *sim.Proc, n *machine.Node, off int64) {
			n.CPU.Store64(p, addr.Make(1, off), 1)
		},
		Settle: func(p *sim.Proc, n *machine.Node) {
			n.CPU.MB(p)
			n.Shell.WaitWritesComplete(p)
		},
	}
}

// WSRead is the workstation read probe (Figure 1, right).
func WSRead() WSProbe {
	return WSProbe{
		Name: "workstation read",
		Access: func(p *sim.Proc, c *cpu.CPU, off int64) {
			c.Load64(p, off)
		},
	}
}

// WSWrite is the workstation write probe.
func WSWrite() WSProbe {
	return WSProbe{
		Name: "workstation write",
		Access: func(p *sim.Proc, c *cpu.CPU, off int64) {
			c.Store64(p, off, 1)
		},
	}
}

// PrefetchPoint is one measurement of the §5.2 grouped-prefetch probe.
type PrefetchPoint struct {
	Group      int
	AvgNSPerOp float64
}

// PrefetchProbe measures the average latency per element of issuing
// `group` prefetches, popping them, and storing the results locally
// (Figure 6). With group < 4 a memory barrier precedes the pops (§5.2).
func PrefetchProbe(newMachine func() *machine.T3D, groups []int, reps int) []PrefetchPoint {
	var out []PrefetchPoint
	for _, g := range groups {
		m := newMachine()
		var avg float64
		m.RunOn(0, func(p *sim.Proc, n *machine.Node) {
			n.Shell.SetAnnex(p, 1, 1, false)
			dst := int64(1 << 20)
			runGroup := func(base int64) {
				for i := 0; i < g; i++ {
					n.CPU.FetchHint(p, addr.Make(1, base+int64(i)*8))
				}
				n.CPU.MB(p) // hints must leave the processor before pops
				for i := 0; i < g; i++ {
					v := n.Shell.PopPrefetch(p)
					n.CPU.Store64(p, dst+int64(i)*8, v)
				}
			}
			runGroup(0) // warm
			n.CPU.MB(p)
			start := p.Now()
			for r := 0; r < reps; r++ {
				runGroup(int64(r*g) * 8 % (8 << 10))
			}
			avg = float64(p.Now()-start) / float64(reps*g) * cpu.NSPerCycle
		})
		out = append(out, PrefetchPoint{g, avg})
	}
	return out
}

// BandwidthPoint is one measurement of the §6.2 bulk-transfer comparison.
type BandwidthPoint struct {
	Bytes int64
	MBs   float64
}

// Bandwidth converts an elapsed cycle count for n bytes into MB/s.
func Bandwidth(n int64, cycles sim.Time) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(n) / (float64(cycles) * cpu.NSPerCycle * 1e-9) / 1e6
}
