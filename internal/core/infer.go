package core

import (
	"math"
	"sort"
)

// This file is the "gray box" half of the methodology: given the latency
// profiles, infer the structural parameters of the machine the way §2 of
// the paper reads them off the curves — cache size and line size from the
// first inflections, full memory time from the plateau, associativity
// from the behaviour at half-array strides, and the write-buffer depth
// from the ratio of memory time to sustained write cost.

// Inferred holds the parameters read from a read-latency profile.
type Inferred struct {
	CacheHitNS   float64
	CacheSize    int64
	LineSize     int64
	MemoryNS     float64 // full access at line strides
	DirectMapped bool
	HasL2        bool
	L2Size       int64
}

// InferMemory analyzes a read profile (local or workstation).
func InferMemory(pr *Profile) Inferred {
	var inf Inferred
	inf.CacheHitNS = smallestLatency(pr)
	inf.CacheSize = inferCacheSize(pr, inf.CacheHitNS)
	inf.LineSize = inferLineSize(pr, inf.CacheSize)
	inf.MemoryNS = inferMemoryNS(pr, inf.CacheSize, inf.LineSize)
	inf.DirectMapped = inferDirectMapped(pr, inf.CacheSize, inf.CacheHitNS)
	inf.HasL2, inf.L2Size = inferL2(pr, inf.CacheSize, inf.CacheHitNS, inf.MemoryNS)
	return inf
}

func smallestLatency(pr *Profile) float64 {
	min := math.Inf(1)
	for _, c := range pr.Curves {
		for _, p := range c.Points {
			if p.AvgNS < min {
				min = p.AvgNS
			}
		}
	}
	return min
}

// inferCacheSize finds the largest array size whose whole curve stays at
// the hit time: arrays within the cache never miss after warm-up (§2.2).
func inferCacheSize(pr *Profile, hit float64) int64 {
	var best int64
	for _, c := range pr.Curves {
		flat := true
		for _, p := range c.Points {
			if p.AvgNS > hit*1.5 {
				flat = false
				break
			}
		}
		if flat && c.ArraySize > best {
			best = c.ArraySize
		}
	}
	return best
}

// inferLineSize finds the stride at which a beyond-cache curve stops
// rising: once every access misses, spreading the stride further cannot
// hurt (until DRAM paging effects), revealing the line size (§2.2).
func inferLineSize(pr *Profile, cacheSize int64) int64 {
	for _, c := range pr.Curves {
		if c.ArraySize <= cacheSize*2 {
			continue
		}
		for i := 1; i < len(c.Points); i++ {
			prev, cur := c.Points[i-1], c.Points[i]
			if prev.AvgNS > 0 && cur.AvgNS/prev.AvgNS < 1.1 {
				return prev.Stride
			}
		}
	}
	return 0
}

// inferMemoryNS reads the all-miss plateau: the LARGEST array (beyond
// every cache level) at twice the line stride, below DRAM-page-effect
// strides.
func inferMemoryNS(pr *Profile, cacheSize, lineSize int64) float64 {
	if lineSize == 0 {
		return 0
	}
	var ns float64
	var best int64
	for _, c := range pr.Curves {
		if c.ArraySize <= cacheSize*4 || c.ArraySize <= best {
			continue
		}
		for _, p := range c.Points {
			if p.Stride == lineSize*2 {
				best = c.ArraySize
				ns = p.AvgNS
			}
		}
	}
	return ns
}

// inferDirectMapped checks the paper's associativity test: "if the cache
// had an associativity of two there would have been a drop when the
// stride was half the array size" (§2.2).
func inferDirectMapped(pr *Profile, cacheSize int64, hit float64) bool {
	for _, c := range pr.Curves {
		if c.ArraySize != cacheSize*2 {
			continue
		}
		last := c.Points[len(c.Points)-1] // stride = size/2: two addresses
		return last.AvgNS > hit*1.5
	}
	return true
}

// inferL2 looks for an intermediate plateau between the L1 hit time and
// full memory time (§2.2: the workstation shows three distinct sets of
// curves, the T3D only two).
func inferL2(pr *Profile, l1Size int64, hit, memNS float64) (bool, int64) {
	var l2Size int64
	for _, c := range pr.Curves {
		if c.ArraySize <= l1Size {
			continue
		}
		// Plateau level for this size at moderate strides.
		var lv []float64
		for _, p := range c.Points {
			if p.Stride >= 64 && p.Stride <= 4096 && p.Stride <= c.ArraySize/4 {
				lv = append(lv, p.AvgNS)
			}
		}
		if len(lv) == 0 {
			continue
		}
		sort.Float64s(lv)
		med := lv[len(lv)/2]
		if med > hit*2 && med < memNS*0.6 {
			if c.ArraySize > l2Size {
				l2Size = c.ArraySize
			}
		}
	}
	return l2Size > 0, l2Size
}

// InferWriteBufferDepth applies §2.3's estimate: memory access time
// divided by the sustained line-stride write cost.
func InferWriteBufferDepth(memoryNS, writePlateauNS float64) int {
	if writePlateauNS <= 0 {
		return 0
	}
	return int(math.Round(memoryNS / writePlateauNS))
}
