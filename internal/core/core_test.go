package core

import (
	"testing"

	"repro/internal/machine"
)

func newM() *machine.T3D { return machine.New(machine.DefaultConfig(2)) }

// smallCfg keeps unit-test sweeps fast; the full Figure 1 sweep runs in
// the benchmark harness.
func smallCfg() SawtoothConfig {
	return SawtoothConfig{
		Sizes:       []int64{4 << 10, 16 << 10, 64 << 10},
		MinAccesses: 256,
		WarmPasses:  1,
	}
}

func TestSawtoothLocalReadShape(t *testing.T) {
	prof := Sawtooth(newM, LocalRead(), smallCfg())
	// 4 KB array: all hits, one cycle.
	if ns, ok := prof.At(4<<10, 8); !ok || ns > 8 {
		t.Errorf("4K/8 = %.1f ns, want ≈ 6.7 (cache hit)", ns)
	}
	// 64 KB at line stride: every access misses: ≈ 145 ns.
	if ns, ok := prof.At(64<<10, 32); !ok || ns < 130 || ns > 165 {
		t.Errorf("64K/32 = %.1f ns, want ≈ 145", ns)
	}
	// Latency grows from 8-byte to 32-byte strides beyond the cache.
	a, _ := prof.At(64<<10, 8)
	b, _ := prof.At(64<<10, 32)
	if a >= b {
		t.Errorf("64K: stride 8 (%.1f) should be cheaper than stride 32 (%.1f)", a, b)
	}
}

func TestSawtoothLocalWriteShape(t *testing.T) {
	prof := Sawtooth(newM, LocalWrite(), smallCfg())
	small, _ := prof.At(64<<10, 8)
	line, _ := prof.At(64<<10, 32)
	if small < 15 || small > 27 {
		t.Errorf("write at stride 8 = %.1f ns, want ≈ 20 (merging)", small)
	}
	if line < 28 || line > 42 {
		t.Errorf("write at stride 32 = %.1f ns, want ≈ 35", line)
	}
}

func TestSawtoothRemoteReadShape(t *testing.T) {
	cfg := SawtoothConfig{Sizes: []int64{8 << 10}, MinAccesses: 128, WarmPasses: 1}
	prof := Sawtooth(newM, RemoteReadUncached(), cfg)
	if ns, ok := prof.At(8<<10, 8); !ok || ns < 560 || ns > 680 {
		t.Errorf("remote uncached 8K/8 = %.1f ns, want ≈ 610", ns)
	}
	cprof := Sawtooth(newM, RemoteReadCached(), SawtoothConfig{
		Sizes: []int64{64 << 10}, MinAccesses: 128, WarmPasses: 1})
	// At line stride every cached access is a fill: ≈ 765 ns.
	if ns, ok := cprof.At(64<<10, 32); !ok || ns < 700 || ns > 830 {
		t.Errorf("remote cached 64K/32 = %.1f ns, want ≈ 765", ns)
	}
	// Cached reads prefetch line-mates: stride 8 is far cheaper.
	a, _ := cprof.At(64<<10, 8)
	b, _ := cprof.At(64<<10, 32)
	if a >= b/2 {
		t.Errorf("cached stride-8 (%.1f) should amortize the fill (stride-32 %.1f)", a, b)
	}
}

func TestInferMemoryT3D(t *testing.T) {
	// The full gray-box loop: run the probe, infer the machine.
	cfg := SawtoothConfig{
		Sizes:       []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 256 << 10},
		MinAccesses: 256,
		WarmPasses:  1,
	}
	prof := Sawtooth(newM, LocalRead(), cfg)
	inf := InferMemory(&prof)
	if inf.CacheSize != 8<<10 {
		t.Errorf("inferred cache size = %d, want 8K", inf.CacheSize)
	}
	if inf.LineSize != 32 {
		t.Errorf("inferred line size = %d, want 32", inf.LineSize)
	}
	if inf.MemoryNS < 130 || inf.MemoryNS > 165 {
		t.Errorf("inferred memory time = %.1f ns, want ≈ 145", inf.MemoryNS)
	}
	if !inf.DirectMapped {
		t.Error("T3D L1 must be inferred direct-mapped")
	}
	if inf.HasL2 {
		t.Error("T3D has no L2; inference found one")
	}
}

func TestInferMemoryWorkstation(t *testing.T) {
	cfg := SawtoothConfig{
		Sizes:       []int64{4 << 10, 8 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20},
		MinAccesses: 128,
		WarmPasses:  1,
	}
	prof := SawtoothWorkstation(WSRead(), cfg)
	inf := InferMemory(&prof)
	if inf.CacheSize != 8<<10 {
		t.Errorf("inferred L1 size = %d, want 8K", inf.CacheSize)
	}
	if !inf.HasL2 {
		t.Error("workstation L2 not detected")
	}
	if inf.MemoryNS < 250 || inf.MemoryNS > 360 {
		t.Errorf("workstation memory time = %.1f ns, want ≈ 300", inf.MemoryNS)
	}
}

func TestWriteBufferDepthEstimate(t *testing.T) {
	// §2.3: 145 ns / 35 ns ≈ 4 entries.
	prof := Sawtooth(newM, LocalWrite(), smallCfg())
	plateau, _ := prof.At(64<<10, 32)
	if d := InferWriteBufferDepth(145, plateau); d != 4 {
		t.Errorf("write buffer depth estimate = %d, want 4", d)
	}
}

func TestPrefetchProbeShape(t *testing.T) {
	pts := PrefetchProbe(newM, []int{1, 4, 16}, 16)
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	one, four, sixteen := pts[0].AvgNSPerOp, pts[1].AvgNSPerOp, pts[2].AvgNSPerOp
	// Figure 6: grouping pipelines the latency away.
	if !(one > four && four > sixteen) {
		t.Errorf("latency not decreasing with group size: %v %v %v", one, four, sixteen)
	}
	// Groups of 16 approach the 31-cycle (~207 ns) issue+pop floor.
	if sixteen < 170 || sixteen > 240 {
		t.Errorf("group-16 = %.1f ns/op, want ≈ 207", sixteen)
	}
	// A single prefetch costs about a blocking read plus 15 cycles.
	if one < 620 || one > 790 {
		t.Errorf("group-1 = %.1f ns/op, want ≈ 700", one)
	}
}

func TestBandwidth(t *testing.T) {
	// 150 MHz: 1 byte/cycle = 150 MB/s.
	if b := Bandwidth(1500, 1500); b < 149 || b > 151 {
		t.Errorf("Bandwidth = %.1f, want 150", b)
	}
	if b := Bandwidth(100, 0); b != 0 {
		t.Errorf("zero-cycle bandwidth = %v", b)
	}
}

func TestStridesFor(t *testing.T) {
	st := StridesFor(64)
	want := []int64{8, 16, 32}
	if len(st) != len(want) {
		t.Fatalf("StridesFor(64) = %v", st)
	}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("StridesFor(64) = %v", st)
		}
	}
}

func TestDefaultSizes(t *testing.T) {
	s := DefaultSizes()
	if s[0] != 4<<10 || s[len(s)-1] != 8<<20 {
		t.Errorf("DefaultSizes = %v", s)
	}
}
