// Package repro's benchmark harness: one testing.B benchmark per figure
// and table of "Empirical Evaluation of the CRAY-T3D: A Compiler
// Perspective" (ISCA 1995), plus ablation benchmarks for the design
// choices DESIGN.md calls out. Reported custom metrics carry the paper's
// units (ns/op of simulated time, MB/s, µs/edge), so
//
//	go test -bench=. -benchmem
//
// regenerates the headline numbers. The full tabular artifacts come from
// cmd/t3dbench.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/am"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/em3d"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/net"
	"repro/internal/scc"
	"repro/internal/sim"
	"repro/internal/splitc"
)

func newM() *machine.T3D { return machine.New(machine.DefaultConfig(2)) }

// simNS converts simulated cycles to nanoseconds for custom metrics.
func simNS(cycles sim.Time) float64 { return float64(cycles) * cpu.NSPerCycle }

// --- Figure 1: local read latency, T3D vs workstation ---

func BenchmarkFig1LocalReadT3D(b *testing.B) {
	cfg := core.SawtoothConfig{Sizes: []int64{64 << 10}, MinAccesses: 256, WarmPasses: 1}
	var ns float64
	for i := 0; i < b.N; i++ {
		prof := core.Sawtooth(newM, core.LocalRead(), cfg)
		ns, _ = prof.At(64<<10, 32)
	}
	b.ReportMetric(ns, "simns/read")
}

func BenchmarkFig1LocalReadWorkstation(b *testing.B) {
	cfg := core.SawtoothConfig{Sizes: []int64{1 << 20}, MinAccesses: 128, WarmPasses: 1}
	var ns float64
	for i := 0; i < b.N; i++ {
		prof := core.SawtoothWorkstation(core.WSRead(), cfg)
		ns, _ = prof.At(1<<20, 32)
	}
	b.ReportMetric(ns, "simns/read")
}

// --- Figure 2: local write cost ---

func BenchmarkFig2LocalWrite(b *testing.B) {
	cfg := core.SawtoothConfig{Sizes: []int64{64 << 10}, MinAccesses: 256, WarmPasses: 1}
	var ns float64
	for i := 0; i < b.N; i++ {
		prof := core.Sawtooth(newM, core.LocalWrite(), cfg)
		ns, _ = prof.At(64<<10, 32)
	}
	b.ReportMetric(ns, "simns/write")
}

// --- Table §2: gray-box inference ---

func BenchmarkTab2Inference(b *testing.B) {
	cfg := core.SawtoothConfig{
		Sizes:       []int64{4 << 10, 8 << 10, 16 << 10, 64 << 10, 256 << 10},
		MinAccesses: 192, WarmPasses: 1,
	}
	var inferred int64
	for i := 0; i < b.N; i++ {
		prof := core.Sawtooth(newM, core.LocalRead(), cfg)
		inf := core.InferMemory(&prof)
		inferred = inf.CacheSize
	}
	b.ReportMetric(float64(inferred), "inferred-L1-bytes")
}

// --- Table §3: annex update ---

func BenchmarkTab3AnnexUpdate(b *testing.B) {
	m := newM()
	var cy float64
	m.RunOn(0, func(p *sim.Proc, n *machine.Node) {
		start := p.Now()
		for i := 0; i < 256; i++ {
			n.Shell.SetAnnex(p, 1, 1, false)
		}
		cy = float64(p.Now()-start) / 256
	})
	for i := 0; i < b.N; i++ {
		_ = cy
	}
	b.ReportMetric(cy, "simcy/update")
}

// --- Figure 4: remote reads ---

func BenchmarkFig4RemoteReadUncached(b *testing.B) {
	benchRemoteRead(b, false)
}

func BenchmarkFig4RemoteReadCached(b *testing.B) {
	benchRemoteRead(b, true)
}

func benchRemoteRead(b *testing.B, cached bool) {
	var cy float64
	for i := 0; i < b.N; i++ {
		m := newM()
		m.RunOn(0, func(p *sim.Proc, n *machine.Node) {
			n.Shell.SetAnnex(p, 1, 1, cached)
			start := p.Now()
			const reps = 256
			for r := int64(0); r < reps; r++ {
				n.CPU.Load64(p, addr.Make(1, (r*32)%(8<<10)))
			}
			cy = float64(p.Now()-start) / reps
		})
	}
	b.ReportMetric(cy*cpu.NSPerCycle, "simns/read")
}

func BenchmarkFig4SplitCRead(b *testing.B) {
	var cy float64
	for i := 0; i < b.N; i++ {
		rt := splitc.NewRuntime(machine.New(machine.DefaultConfig(3)), splitc.DefaultConfig())
		rt.RunOn(0, func(c *splitc.Ctx) {
			start := c.P.Now()
			const reps = 256
			for r := 0; r < reps; r++ {
				c.Read(splitc.Global(1+r%2, rt.Cfg.HeapBase+int64(r%64)*8))
			}
			cy = float64(c.P.Now()-start) / reps
		})
	}
	b.ReportMetric(cy, "simcy/read")
}

// --- Figure 5: remote writes ---

func BenchmarkFig5RemoteWriteBlocking(b *testing.B) {
	var cy float64
	for i := 0; i < b.N; i++ {
		m := newM()
		m.RunOn(0, func(p *sim.Proc, n *machine.Node) {
			n.Shell.SetAnnex(p, 1, 1, false)
			start := p.Now()
			const reps = 256
			for r := int64(0); r < reps; r++ {
				n.CPU.Store64(p, addr.Make(1, (r*8)%(8<<10)), 1)
				n.CPU.MB(p)
				n.Shell.WaitWritesComplete(p)
			}
			cy = float64(p.Now()-start) / reps
		})
	}
	b.ReportMetric(cy, "simcy/write")
}

func BenchmarkFig5SplitCWrite(b *testing.B) {
	var cy float64
	for i := 0; i < b.N; i++ {
		rt := splitc.NewRuntime(machine.New(machine.DefaultConfig(3)), splitc.DefaultConfig())
		rt.RunOn(0, func(c *splitc.Ctx) {
			start := c.P.Now()
			const reps = 256
			for r := 0; r < reps; r++ {
				c.Write(splitc.Global(1+r%2, rt.Cfg.HeapBase+int64(r%64)*8), 1)
			}
			cy = float64(c.P.Now()-start) / reps
		})
	}
	b.ReportMetric(cy, "simcy/write")
}

// --- Figure 6: prefetch pipeline ---

func BenchmarkFig6PrefetchGroup1(b *testing.B)  { benchPrefetch(b, 1) }
func BenchmarkFig6PrefetchGroup16(b *testing.B) { benchPrefetch(b, 16) }

func benchPrefetch(b *testing.B, group int) {
	var ns float64
	for i := 0; i < b.N; i++ {
		pts := core.PrefetchProbe(newM, []int{group}, 32)
		ns = pts[0].AvgNSPerOp
	}
	b.ReportMetric(ns, "simns/word")
}

// --- Figure 7: non-blocking writes / put ---

func BenchmarkFig7NonblockingWrite(b *testing.B) {
	var cy float64
	for i := 0; i < b.N; i++ {
		m := newM()
		m.RunOn(0, func(p *sim.Proc, n *machine.Node) {
			n.Shell.SetAnnex(p, 1, 1, false)
			start := p.Now()
			const reps = 512
			for r := int64(0); r < reps; r++ {
				n.CPU.Store64(p, addr.Make(1, (r*32)%(8<<10)), 1)
			}
			cy = float64(p.Now()-start) / reps
		})
	}
	b.ReportMetric(cy, "simcy/write")
}

func BenchmarkFig7SplitCPut(b *testing.B) {
	var cy float64
	for i := 0; i < b.N; i++ {
		rt := splitc.NewRuntime(machine.New(machine.DefaultConfig(3)), splitc.DefaultConfig())
		rt.RunOn(0, func(c *splitc.Ctx) {
			start := c.P.Now()
			const reps = 512
			for r := 0; r < reps; r++ {
				c.Put(splitc.Global(1+r%2, rt.Cfg.HeapBase+int64(r)*8%4096), 1)
			}
			c.Sync()
			cy = float64(c.P.Now()-start) / reps
		})
	}
	b.ReportMetric(cy, "simcy/put")
}

// --- Figure 8: bulk transfer bandwidth ---

func BenchmarkFig8BulkReadPrefetch8K(b *testing.B) { benchBulkRead(b, splitc.MechPrefetch, 8<<10) }
func BenchmarkFig8BulkReadBLT256K(b *testing.B)    { benchBulkRead(b, splitc.MechBLT, 256<<10) }
func BenchmarkFig8BulkReadUncached8K(b *testing.B) { benchBulkRead(b, splitc.MechUncached, 8<<10) }
func BenchmarkFig8BulkReadCached8K(b *testing.B)   { benchBulkRead(b, splitc.MechCached, 8<<10) }

func benchBulkRead(b *testing.B, mech splitc.Mechanism, size int64) {
	var mbs float64
	for i := 0; i < b.N; i++ {
		rt := splitc.NewRuntime(newM(), splitc.DefaultConfig())
		var cycles sim.Time
		rt.RunOn(0, func(c *splitc.Ctx) {
			c.Alloc(size)
			dst := c.Alloc(size)
			g := splitc.Global(1, rt.Cfg.HeapBase)
			c.BulkReadVia(mech, dst, g, size) // warm
			start := c.P.Now()
			c.BulkReadVia(mech, dst, g, size)
			cycles = c.P.Now() - start
		})
		mbs = core.Bandwidth(size, cycles)
	}
	b.ReportMetric(mbs, "simMB/s")
}

func BenchmarkFig8BulkWriteStores64K(b *testing.B) {
	var mbs float64
	for i := 0; i < b.N; i++ {
		rt := splitc.NewRuntime(newM(), splitc.DefaultConfig())
		var cycles sim.Time
		rt.RunOn(0, func(c *splitc.Ctx) {
			src := c.Alloc(64 << 10)
			dst := c.Alloc(64 << 10)
			start := c.P.Now()
			c.BulkWrite(splitc.Global(1, dst), src, 64<<10)
			cycles = c.P.Now() - start
		})
		mbs = core.Bandwidth(64<<10, cycles)
	}
	b.ReportMetric(mbs, "simMB/s")
}

// --- Table §7: synchronization and messaging ---

func BenchmarkTab7MessageSend(b *testing.B) {
	var cy float64
	for i := 0; i < b.N; i++ {
		m := newM()
		m.RunOn(0, func(p *sim.Proc, n *machine.Node) {
			start := p.Now()
			for r := 0; r < 64; r++ {
				n.Shell.SendMessage(p, 1, [4]uint64{})
			}
			cy = float64(p.Now()-start) / 64
		})
	}
	b.ReportMetric(cy, "simcy/send")
}

func BenchmarkTab7FetchIncrement(b *testing.B) {
	var cy float64
	for i := 0; i < b.N; i++ {
		m := newM()
		m.RunOn(0, func(p *sim.Proc, n *machine.Node) {
			start := p.Now()
			for r := 0; r < 64; r++ {
				n.Shell.FetchInc(p, 1, 0)
			}
			cy = float64(p.Now()-start) / 64
		})
	}
	b.ReportMetric(cy, "simcy/op")
}

func BenchmarkTab7AMDeposit(b *testing.B) {
	var cy float64
	for i := 0; i < b.N; i++ {
		rt := splitc.NewRuntime(newM(), splitc.DefaultConfig())
		rt.Run(func(c *splitc.Ctx) {
			ep := am.New(c, am.DefaultConfig())
			const msgs = 32
			if c.MyPE() == 1 {
				start := c.P.Now()
				for r := 0; r < msgs; r++ {
					ep.Send(0, am.HStore, [4]uint64{uint64(rt.Cfg.HeapBase), 1, 8, 0})
				}
				cy = float64(c.P.Now()-start) / msgs
			} else {
				ep.PollUntil(func() bool { return ep.Received == msgs })
			}
		})
	}
	b.ReportMetric(cy, "simcy/deposit")
}

func BenchmarkTab7Barrier(b *testing.B) {
	var cy float64
	for i := 0; i < b.N; i++ {
		m := machine.New(machine.DefaultConfig(8))
		m.Run(func(p *sim.Proc, n *machine.Node) {
			start := p.Now()
			for r := 0; r < 32; r++ {
				tk := n.Shell.BarrierStart(p)
				n.Shell.BarrierEnd(p, tk)
			}
			if n.PE == 0 {
				cy = float64(p.Now()-start) / 32
			}
		})
	}
	b.ReportMetric(cy, "simcy/barrier")
}

// --- Figure 9: EM3D ---

func BenchmarkFig9EM3D(b *testing.B) {
	for _, v := range em3d.Versions {
		b.Run(v.String(), func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				m := em3d.NewMachine(4)
				cfg := em3d.Config{NodesPerPE: 60, Degree: 6, RemoteFrac: 0.2, Seed: 42, Iters: 2}
				res := em3d.Run(m, cfg, v, em3d.DefaultKnobs())
				if !res.Validated {
					b.Fatalf("%v failed validation", v)
				}
				us = res.USPerEdge
			}
			b.ReportMetric(us, "simus/edge")
		})
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationAnnexStrategy compares single-register reloading with
// the multi-register runtime table (§3.4).
func BenchmarkAblationAnnexStrategy(b *testing.B) {
	for _, s := range []struct {
		name string
		st   splitc.AnnexStrategy
	}{{"Single", splitc.SingleAnnex}, {"Multi", splitc.MultiAnnex}} {
		b.Run(s.name, func(b *testing.B) {
			var cy float64
			for i := 0; i < b.N; i++ {
				cfg := splitc.DefaultConfig()
				cfg.Annex = s.st
				rt := splitc.NewRuntime(machine.New(machine.DefaultConfig(4)), cfg)
				rt.RunOn(0, func(c *splitc.Ctx) {
					start := c.P.Now()
					const reps = 192
					for r := 0; r < reps; r++ {
						c.Read(splitc.Global(1+r%3, rt.Cfg.HeapBase))
					}
					cy = float64(c.P.Now()-start) / reps
				})
			}
			b.ReportMetric(cy, "simcy/read")
		})
	}
}

// BenchmarkAblationReadMechanism compares the uncached read the runtime
// ships with against the cached+flush alternative it rejects (§4.4).
func BenchmarkAblationReadMechanism(b *testing.B) {
	run := func(b *testing.B, rd func(c *splitc.Ctx, g splitc.GlobalPtr) uint64) {
		var cy float64
		for i := 0; i < b.N; i++ {
			rt := splitc.NewRuntime(newM(), splitc.DefaultConfig())
			rt.RunOn(0, func(c *splitc.Ctx) {
				start := c.P.Now()
				const reps = 192
				for r := 0; r < reps; r++ {
					rd(c, splitc.Global(1, rt.Cfg.HeapBase+int64(r%512)*8))
				}
				cy = float64(c.P.Now()-start) / reps
			})
		}
		b.ReportMetric(cy, "simcy/read")
	}
	b.Run("Uncached", func(b *testing.B) {
		run(b, func(c *splitc.Ctx, g splitc.GlobalPtr) uint64 { return c.Read(g) })
	})
	b.Run("CachedPlusFlush", func(b *testing.B) {
		run(b, func(c *splitc.Ctx, g splitc.GlobalPtr) uint64 { return c.ReadCached(g) })
	})
}

// BenchmarkAblationBulkCrossover sweeps the prefetch/BLT switch point to
// confirm ≈16 KB is where the BLT starts winning (§6.3).
func BenchmarkAblationBulkCrossover(b *testing.B) {
	for _, size := range []int64{4 << 10, 16 << 10, 64 << 10} {
		for _, mech := range []splitc.Mechanism{splitc.MechPrefetch, splitc.MechBLT} {
			b.Run(mech.String()+"-"+bytesLabel(size), func(b *testing.B) {
				benchBulkRead(b, mech, size)
			})
		}
	}
}

func bytesLabel(n int64) string {
	if n >= 1<<10 {
		return string(rune('0'+n>>10/10%10)) + string(rune('0'+n>>10%10)) + "K"
	}
	return "small"
}

// BenchmarkAblationStoreVsWrite shows the pipelining gain of deferred
// completion (§7.2): stores + one AllStoreSync vs blocking writes.
func BenchmarkAblationStoreVsWrite(b *testing.B) {
	b.Run("BlockingWrites", func(b *testing.B) {
		var cy float64
		for i := 0; i < b.N; i++ {
			rt := splitc.NewRuntime(newM(), splitc.DefaultConfig())
			rt.Run(func(c *splitc.Ctx) {
				if c.MyPE() != 0 {
					c.Barrier()
					return
				}
				start := c.P.Now()
				for r := 0; r < 128; r++ {
					c.Write(splitc.Global(1, rt.Cfg.HeapBase+int64(r)*8), 1)
				}
				cy = float64(c.P.Now()-start) / 128
				c.Barrier()
			})
		}
		b.ReportMetric(cy, "simcy/store")
	})
	b.Run("SignalingStores", func(b *testing.B) {
		var cy float64
		for i := 0; i < b.N; i++ {
			rt := splitc.NewRuntime(newM(), splitc.DefaultConfig())
			rt.Run(func(c *splitc.Ctx) {
				start := c.P.Now()
				if c.MyPE() == 0 {
					for r := 0; r < 128; r++ {
						c.Store(splitc.Global(1, rt.Cfg.HeapBase+int64(r)*8), 1)
					}
				}
				c.AllStoreSync()
				if c.MyPE() == 0 {
					cy = float64(c.P.Now()-start) / 128
				}
			})
		}
		b.ReportMetric(cy, "simcy/store")
	})
}

// BenchmarkHostSimulatorThroughput measures the host-side cost of the
// simulator itself — events per wall second, the serving-capacity
// number t3dserve's admission control is ultimately bounded by. One of
// the few benchmarks here about real time rather than simulated time.
func BenchmarkHostSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		m := newM()
		m.RunOn(0, func(p *sim.Proc, n *machine.Node) {
			for r := int64(0); r < 1000; r++ {
				n.CPU.Load64(p, (r*32)%(64<<10))
			}
		})
		events += m.Eng.Events()
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}

// --- Host allocation profile (BENCH_*.json): allocs/op on the three
// paths every served job hammers — the event heap, the shell's remote
// access path, and torus route computation. A regression here is a
// service-throughput regression before it is anything else. ---

// BenchmarkAllocSimHeap churns the raw event heap: 1024 schedules and
// pops per op, no machine attached.
func BenchmarkAllocSimHeap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		for r := 0; r < 1024; r++ {
			eng.At(sim.Time(r%64), func() {})
		}
		eng.Run()
	}
}

// BenchmarkAllocShellHotPath drives the remote-load fast path: annexed
// uncached loads, the inner loop of every Split-C read.
func BenchmarkAllocShellHotPath(b *testing.B) {
	m := newM() // built once: the metric is the access path, not setup
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunOn(0, func(p *sim.Proc, n *machine.Node) {
			n.Shell.SetAnnex(p, 1, 1, false)
			for r := int64(0); r < 256; r++ {
				n.CPU.Load64(p, addr.Make(1, (r*32)%(8<<10)))
			}
		})
	}
}

// BenchmarkAllocNetRouting computes all-pairs torus routes on a fresh
// network each op — the cold-cache cost paid after every topology
// change (fault, heal, reroute).
func BenchmarkAllocNetRouting(b *testing.B) {
	b.ReportAllocs()
	const nodes = 8
	for i := 0; i < b.N; i++ {
		nw := net.New(sim.NewEngine(), net.DefaultConfig(nodes))
		for s := 0; s < nodes; s++ {
			for d := 0; d < nodes; d++ {
				if s != d {
					nw.Route(s, d)
				}
			}
		}
	}
}

// BenchmarkExperimentRegistry smoke-runs the cheapest registered
// experiment end to end through the exp registry.
func BenchmarkExperimentRegistry(b *testing.B) {
	e, ok := exp.Find("hop")
	if !ok {
		b.Fatal("hop experiment missing")
	}
	for i := 0; i < b.N; i++ {
		_ = e.Run(exp.Options{Quick: true})
	}
}

// --- Application kernels (internal/apps): end-to-end echoes of the
// primitive costs, EM3D-style ---

func BenchmarkAppHistogram(b *testing.B) {
	for _, m := range []apps.HistogramMethod{apps.HistLocalReduce, apps.HistRemoteRMW, apps.HistAM} {
		b.Run(m.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			keys := make([][]uint64, 4)
			for pe := range keys {
				for i := 0; i < 24; i++ {
					keys[pe] = append(keys[pe], rng.Uint64())
				}
			}
			var cy int64
			for i := 0; i < b.N; i++ {
				cfg := machine.DefaultConfig(4)
				cfg.MemBytes = 2 << 20
				rt := splitc.NewRuntime(machine.New(cfg), splitc.DefaultConfig())
				res := apps.Histogram(rt, keys, 16, m)
				if !res.Validated {
					b.Fatal("validation failed")
				}
				cy = res.Cycles
			}
			b.ReportMetric(float64(cy), "simcy")
		})
	}
}

func BenchmarkAppSampleSort(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	keys := make([][]uint64, 4)
	for pe := range keys {
		for i := 0; i < 48; i++ {
			keys[pe] = append(keys[pe], rng.Uint64())
		}
	}
	var cy int64
	for i := 0; i < b.N; i++ {
		cfg := machine.DefaultConfig(4)
		cfg.MemBytes = 2 << 20
		rt := splitc.NewRuntime(machine.New(cfg), splitc.DefaultConfig())
		res := apps.SampleSort(rt, keys)
		if !res.Validated {
			b.Fatal("validation failed")
		}
		cy = res.Cycles
	}
	b.ReportMetric(float64(cy), "simcy")
}

func BenchmarkAppMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const n = 16
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = rng.Float64()
		}
	}
	var cy int64
	for i := 0; i < b.N; i++ {
		cfg := machine.DefaultConfig(4)
		cfg.MemBytes = 2 << 20
		rt := splitc.NewRuntime(machine.New(cfg), splitc.DefaultConfig())
		res := apps.MatMul(rt, a)
		if !res.Validated {
			b.Fatal("validation failed")
		}
		cy = res.Cycles
	}
	b.ReportMetric(float64(cy), "simcy")
}

func BenchmarkAppRadixSort(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	keys := make([][]uint64, 4)
	for pe := range keys {
		for i := 0; i < 32; i++ {
			keys[pe] = append(keys[pe], rng.Uint64()%(1<<16))
		}
	}
	var cy int64
	for i := 0; i < b.N; i++ {
		cfg := machine.DefaultConfig(4)
		cfg.MemBytes = 2 << 20
		rt := splitc.NewRuntime(machine.New(cfg), splitc.DefaultConfig())
		res := apps.RadixSort(rt, keys, 4, 16)
		if !res.Validated {
			b.Fatal("validation failed")
		}
		cy = res.Cycles
	}
	b.ReportMetric(float64(cy), "simcy")
}

// BenchmarkCompilerSplitPhase measures the mini-compiler's split-phase
// pass end to end: the same gather program, naive vs optimized.
func BenchmarkCompilerSplitPhase(b *testing.B) {
	build := func() *scc.Program {
		bb := scc.NewBuilder()
		sum := bb.R()
		bb.I(scc.Instr{Op: scc.OpConst, Dst: sum, Imm: 0})
		base := splitc.DefaultConfig().HeapBase
		vals := make([]scc.Reg, 16)
		for i := 0; i < 16; i++ {
			gp := bb.R()
			bb.I(scc.Instr{Op: scc.OpConst, Dst: gp, Imm: uint64(splitc.Global(1, base+int64(i)*8))})
			vals[i] = bb.R()
			bb.I(scc.Instr{Op: scc.OpRead, Dst: vals[i], A: gp})
		}
		for i := 0; i < 16; i++ {
			bb.I(scc.Instr{Op: scc.OpAdd, Dst: sum, A: sum, B: vals[i]})
		}
		return bb.Build()
	}
	for _, variant := range []struct {
		name string
		opt  bool
	}{{"Naive", false}, {"SplitPhase", true}} {
		b.Run(variant.name, func(b *testing.B) {
			p := build()
			if variant.opt {
				p = scc.OptimizeSplitPhase(p)
			}
			var cy sim.Time
			for i := 0; i < b.N; i++ {
				rt := splitc.NewRuntime(newM(), splitc.DefaultConfig())
				rt.RunOn(0, func(c *splitc.Ctx) {
					start := c.P.Now()
					scc.Exec(c, p)
					cy = c.P.Now() - start
				})
			}
			b.ReportMetric(float64(cy), "simcy")
		})
	}
}
